// Title-workload corpus generation (More, arXiv:1608.04670): one short
// product title per document instead of a full detail page. Titles reuse the
// same 21 category schemas — attributes, value renderers, brands, noise
// levels — so the two workloads describe the same product universe, but the
// surface is a single dense line: brand, noun, a handful of attribute
// values, promo decorations, and the occasional compatible-with trap. There
// are no sentences and no dictionary tables, so the generator also emits the
// distant-supervision lexicon (a partial per-attribute value inventory) that
// seeds the title bootstrap in place of table harvesting.

package gen

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/seed"
	"repro/internal/workload"
)

// lexiconDrawsPerAttr is how many value draws build each attribute's lexicon
// slice. Categorical attributes (a handful of values) come out nearly
// complete; numeric and composite attributes (open ranges) come out sparse —
// the partial coverage is deliberate, so the bootstrap has shapes to
// generalise beyond the lexicon, mirroring how a real taxonomy never lists
// every weight.
const lexiconDrawsPerAttr = 10

// GenerateTitles renders the synthetic title corpus for one category.
func GenerateTitles(cat Category, opt Options) *Corpus {
	c, err := GenerateTitlesCtx(context.Background(), cat, opt)
	if err != nil {
		// Only a canceled context or an armed fault injector can fail
		// generation, and GenerateTitles supplies neither.
		panic(err)
	}
	return c
}

// GenerateTitlesCtx is GenerateTitles with cancellation; see
// GenerateTitlesStreamCtx for the determinism contract.
func GenerateTitlesCtx(ctx context.Context, cat Category, opt Options) (*Corpus, error) {
	return GenerateTitlesStreamCtx(ctx, cat, opt, nil)
}

// GenerateTitlesStreamCtx renders the title corpus in bounded-memory chunks,
// invoking emit once per title in document order — the streaming entry point
// `paegen -workload title` uses. The determinism contract matches
// GenerateStreamCtx: every per-title draw (and the lexicon, drawn first)
// happens up front on the corpus RNG stream, so the corpus is byte-identical
// for every Workers value and chunking. With a non-nil emit, Corpus.Pages
// stays nil; truth, domains, queries and the lexicon always ride the
// returned Corpus.
func GenerateTitlesStreamCtx(ctx context.Context, cat Category, opt Options, emit func(PageResult) error) (*Corpus, error) {
	items := cat.Items
	if opt.Items > 0 {
		items = opt.Items
	}
	seedV := opt.Seed
	if seedV == 0 {
		seedV = 1
	}
	// Salted with the workload name so a title corpus never replays the
	// detail-page corpus's draw sequence for the same (category, seed).
	rng := mat.NewRNG(seedV ^ hashString(cat.Name) ^ hashString(string(workload.Title)))

	corpus := &Corpus{
		Name:     cat.Name,
		Lang:     cat.Lang,
		Workload: workload.Title,
		Aliases:  make(map[string]string),
		Domains:  make(map[string]map[string]bool),
	}
	for i := range cat.Attributes {
		a := &cat.Attributes[i]
		corpus.CanonicalAttrs = append(corpus.CanonicalAttrs, a.Name)
		corpus.Domains[a.Name] = make(map[string]bool)
		for _, al := range a.Aliases {
			corpus.Aliases[al] = a.Name
		}
	}

	// The lexicon draws first, before any title: it plays the role of an
	// external value inventory that exists prior to the corpus, and drawing
	// it up front keeps every later per-title seed independent of it.
	corpus.Lexicon = buildLexicon(&cat, rng)

	type titleJob struct {
		pid  string
		seed uint64
	}
	jobs := make([]titleJob, items)
	for i := range jobs {
		pid := fmt.Sprintf("%s-t%05d", slug(cat.Name), i+opt.IDOffset)
		jobs[i] = titleJob{pid: pid, seed: rng.Uint64() ^ hashString(pid)}
	}
	querySeed := rng.Uint64()

	sinks := make([]*pageSink, genChunk)
	for base := 0; base < items; base += genChunk {
		n := items - base
		if n > genChunk {
			n = genChunk
		}
		err := par.ForEach(ctx, opt.Workers, n, func(i int) error {
			if err := opt.Inject.Fire(faultinject.StageGenPage); err != nil {
				return err
			}
			sink := &pageSink{truthSeen: make(map[string]bool)}
			sink.page = buildTitle(&cat, jobs[base+i].pid, mat.NewRNG(jobs[base+i].seed), sink)
			sinks[i] = sink
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range sinks[:n] {
			corpus.Truth = append(corpus.Truth, s.truth...)
			for _, dv := range s.domains {
				corpus.Domains[dv[0]][dv[1]] = true
			}
			if emit != nil {
				if err := emit(PageResult{Page: s.page, Truth: s.truth}); err != nil {
					return nil, err
				}
			} else {
				corpus.Pages = append(corpus.Pages, s.page)
			}
		}
	}

	corpus.Queries = buildQueries(corpus, items, mat.NewRNG(querySeed))
	return corpus, nil
}

// buildLexicon draws the partial per-attribute value inventory that seeds the
// title bootstrap. Entries keep draw order (attribute order, then draw
// order) so the lexicon is byte-stable; duplicates within an attribute
// collapse.
func buildLexicon(cat *Category, rng *mat.RNG) []seed.LexiconEntry {
	var lex []seed.LexiconEntry
	for j := range cat.Attributes {
		a := &cat.Attributes[j]
		seen := make(map[string]bool, lexiconDrawsPerAttr)
		for d := 0; d < lexiconDrawsPerAttr; d++ {
			v := renderValue(a, cat.Lang, rng)
			if seen[v] {
				continue
			}
			seen[v] = true
			lex = append(lex, seed.LexiconEntry{Attr: a.Name, Value: v})
		}
	}
	return lex
}

// buildTitle renders one product title and plants its truth judgments and
// domain values into the page-local sink. The Page's HTML field carries the
// plain title text — the title workload has no markup.
func buildTitle(cat *Category, pid string, rng *mat.RNG, sink *pageSink) Page {
	// Draw the product's own values.
	values := make([]string, len(cat.Attributes))
	brandIdx := -1
	for j := range cat.Attributes {
		values[j] = renderValue(&cat.Attributes[j], cat.Lang, rng)
		sink.addDomain(cat.Attributes[j].Name, values[j])
		if cat.Attributes[j].Name == cat.BrandAttr {
			brandIdx = j
		}
	}

	decor := titleDecorations(cat.Lang)
	var parts []string
	var decorUsed []string
	pushDecor := func() {
		d := decor[rng.Intn(len(decor))]
		parts = append(parts, d)
		decorUsed = append(decorUsed, d)
	}

	// Leading promo decoration on a noise-dependent minority of titles.
	if rng.Float64() < 0.10+0.3*cat.Noise {
		pushDecor()
	}

	// Brand: usually the product's own (genuine truth), occasionally a
	// decorative shop brand — the secondary-entity error source that on a
	// title sits right next to the noun, where a naive tagger loves it.
	switch {
	case brandIdx >= 0 && rng.Float64() < 0.7:
		parts = append(parts, values[brandIdx])
		sink.addTruth(pid, cat.BrandAttr, values[brandIdx], true)
	case len(cat.Brands) > 0 && rng.Float64() < 0.05+0.35*cat.Noise:
		shop := cat.Brands[rng.Intn(len(cat.Brands))]
		parts = append(parts, shop)
		if brandIdx >= 0 && shop != values[brandIdx] {
			sink.addTruth(pid, cat.BrandAttr, shop, false)
		}
	}
	parts = append(parts, cat.Noun)

	// Titles pack attribute values densely — that is the whole point of the
	// workload: where a detail page surfaces one extra value on ~5% of
	// titles, a listing title advertises most of what the seller thinks
	// matters, scaled by each attribute's MentionProb.
	for j := range cat.Attributes {
		if j == brandIdx {
			continue
		}
		a := &cat.Attributes[j]
		if rng.Float64() < 0.25+0.5*a.MentionProb {
			parts = append(parts, values[j])
			sink.addTruth(pid, a.Name, values[j], true)
		}
	}

	// Compatible-with tail on noisy titles: a value that belongs to another
	// product ("passend für …", "…対応"), which an annotator rejects.
	if rng.Float64() < cat.Noise*0.3 && len(cat.Attributes) > 0 {
		j := rng.Intn(len(cat.Attributes))
		a := &cat.Attributes[j]
		sv := renderValue(a, cat.Lang, rng)
		for sv == values[j] {
			sv = renderValue(a, cat.Lang, rng)
		}
		sink.addDomain(a.Name, sv)
		parts = append(parts, compatPhrase(cat.Lang, sv))
		sink.addTruth(pid, a.Name, sv, false)
	}

	// Trailing decoration.
	if rng.Float64() < 0.15+0.3*cat.Noise {
		pushDecor()
	}

	// Promo decorations are judged like detail-page filler: an over-eager
	// tagger that extracts a decoration token as a value must count as wrong,
	// not fall outside the truth sample.
	for _, d := range decorUsed {
		for _, tok := range valueLikeTokens(d, cat.Lang) {
			for j := range cat.Attributes {
				sink.addTruth(pid, cat.Attributes[j].Name, tok, false)
			}
		}
	}

	return Page{ID: pid, HTML: strings.Join(parts, " ")}
}

// titleDecorations returns the promo tokens sellers decorate listing titles
// with — carrying no attribute information, in the way of every tagger.
func titleDecorations(lang string) []string {
	if lang == "de" {
		return []string{"NEU", "OVP", "Originalverpackt", "Blitzversand", "Aktionspreis", "Top-Angebot"}
	}
	return []string{"【送料無料】", "新品", "正規品", "セール特価", "ポイント2倍", "即納"}
}

// compatPhrase renders the compatible-with trap: the value is on the title,
// but it describes what the product fits, not what it is.
func compatPhrase(lang, v string) string {
	if lang == "de" {
		return "passend für " + v
	}
	return v + "対応"
}
