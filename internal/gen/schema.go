// Package gen generates the synthetic e-commerce corpus that stands in for
// the proprietary Rakuten product pages of the paper. For every category it
// renders merchant-style HTML product pages (free-form text, semi-structured
// "spec line" text, and — on a category-dependent minority of pages —
// dictionary tables), a query log, and the planted ground truth used by the
// evaluation module.
//
// Every statistical property of the generator exists because a paper finding
// depends on it; the mapping is documented in DESIGN.md §7. The generator is
// fully deterministic given a seed.
package gen

// ValueKind describes how an attribute's values are produced.
type ValueKind int

// Attribute value kinds.
const (
	// Categorical attributes draw from a fixed value bank (colors, brands,
	// materials, ...).
	Categorical ValueKind = iota
	// Numeric attributes render a number plus unit; a configurable fraction
	// of mentions uses decimals, the mechanism behind the paper's value-
	// diversification finding.
	Numeric
	// Composite attributes render multi-token patterned values such as the
	// camera shutter-speed ranges ("1/4000秒〜30秒") the paper calls
	// "complex attributes".
	Composite
)

// Attribute is the schema of one product attribute within a category.
type Attribute struct {
	// Name is the canonical attribute name (the one the evaluation uses).
	Name string
	// Aliases are the merchant-dependent surface names, canonical included.
	// Multiple aliases per attribute is what gives the seed pre-processor's
	// attribute-aggregation step real work (paper §V-A).
	Aliases []string
	Kind    ValueKind
	// Values is the bank for Categorical attributes.
	Values []string
	// Numeric parameters.
	NumMin, NumMax int
	Unit           string
	// DecimalProb is the fraction of numeric mentions rendered with a
	// decimal part.
	DecimalProb float64
	// Patterns holds Composite render patterns; "#" placeholders are
	// replaced by random integers.
	Patterns []string
	// MentionProb is the probability that an item's description states this
	// attribute.
	MentionProb float64
	// TableProb is the probability that, on a page that has a dictionary
	// table at all, this attribute appears in it.
	TableProb float64
	// TrapSentences are extra description sentences that mention a value of
	// this attribute's range in a misleading context (shipping weight vs
	// product weight, secondary products, ...). Each has a "%v" placeholder
	// for the value. Statements rendered from traps are marked incorrect in
	// the ground truth.
	TrapSentences []string
	// TrapValues, when non-empty, replaces the attribute's own value range
	// inside trap sentences — used for distractor words that look like
	// values but are not in the attribute's domain (the Garden 花形 case).
	TrapValues []string
}

// Category is the schema of one product category.
type Category struct {
	Name string
	Lang string // "ja" or "de"
	// Items is the default number of product pages to generate.
	Items int
	// DictTableProb is the fraction of pages that carry a dictionary table,
	// the paper's per-category seed-coverage lever (1% for Garden up to
	// ~40% for Ladies Bags).
	DictTableProb float64
	// Noise in [0,1] scales how messy merchants are: junk table cells,
	// missing statements, distractor sentences. Garden is noisy, Digital
	// Cameras is clean.
	Noise float64
	// Merchants is how many distinct merchant styles the category has.
	Merchants int
	// Brands seed the product titles.
	Brands []string
	// BrandAttr names the attribute (canonical) that holds the maker/brand;
	// when set, product titles quote that attribute's value so title
	// mentions are consistent with the page body. Empty for categories
	// without a brand attribute.
	BrandAttr  string
	Attributes []Attribute
	// FillerSentences are attribute-free marketing sentences.
	FillerSentences []string
	// NounJA/NounDE is the head noun used in titles ("digital camera").
	Noun string
}

// AttributeByName returns the schema of the named canonical attribute.
func (c *Category) AttributeByName(name string) *Attribute {
	for i := range c.Attributes {
		if c.Attributes[i].Name == name {
			return &c.Attributes[i]
		}
	}
	return nil
}

// CanonicalAttr maps any alias to its canonical attribute name; unknown
// surface names map to themselves. The evaluation module uses this as the
// referee's alias table.
func (c *Category) CanonicalAttr(alias string) string {
	for i := range c.Attributes {
		for _, a := range c.Attributes[i].Aliases {
			if a == alias {
				return c.Attributes[i].Name
			}
		}
	}
	return alias
}

// catAttr builds a Categorical attribute.
func catAttr(name string, aliases []string, values []string, mention, table float64) Attribute {
	return Attribute{
		Name: name, Aliases: withCanonical(name, aliases), Kind: Categorical,
		Values: values, MentionProb: mention, TableProb: table,
	}
}

// numAttr builds a Numeric attribute.
func numAttr(name string, aliases []string, lo, hi int, unit string, decimalProb, mention, table float64) Attribute {
	return Attribute{
		Name: name, Aliases: withCanonical(name, aliases), Kind: Numeric,
		NumMin: lo, NumMax: hi, Unit: unit, DecimalProb: decimalProb,
		MentionProb: mention, TableProb: table,
	}
}

// compAttr builds a Composite attribute.
func compAttr(name string, aliases []string, patterns []string, mention, table float64) Attribute {
	return Attribute{
		Name: name, Aliases: withCanonical(name, aliases), Kind: Composite,
		Patterns: patterns, MentionProb: mention, TableProb: table,
	}
}

func withCanonical(name string, aliases []string) []string {
	for _, a := range aliases {
		if a == name {
			return aliases
		}
	}
	return append([]string{name}, aliases...)
}
