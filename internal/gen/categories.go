package gen

// Shared Japanese value banks. Product text mixes kanji and katakana forms
// exactly because the paper's redundant-attribute and semantic-cleaning
// mechanisms feed on that surface variety.
var (
	jaColors = []string{
		"レッド", "ブルー", "ブラック", "ホワイト", "ピンク", "グリーン",
		"シルバー", "ゴールド", "ベージュ", "ブラウン", "グレー", "ネイビー",
		"ワインレッド", "ライトブルー", "ダークグリーン", "アイボリー",
		"カーキ", "パープル", "オレンジ", "イエロー", "ミント", "ラベンダー色",
		"チャコール", "ローズピンク",
	}
	jaMaterials = []string{
		"コットン", "ポリエステル", "レザー", "ナイロン", "ウール",
		"合成皮革", "ステンレス", "アルミ", "キャンバス", "スエード",
		"リネン", "デニム", "本革", "メッシュ", "フェルト", "コーデュロイ",
	}
	jaCountries = []string{"日本製", "中国製", "ベトナム製", "イタリア製", "ドイツ製", "アメリカ製", "台湾製", "タイ製"}
	jaBrands    = []string{
		"ソニックス", "パナソニカ", "キャノピー", "ニコラ", "オリンポス",
		"タミヤマ", "ゼブラックス", "モリタ", "ハルカゼ", "アオバ",
		"クロカワ", "フジミヤ", "リバーサイド", "ヤマビコ", "ツバメ屋",
		"ホシノ", "カゼマチ", "ミナトヤ", "サクラダ", "トネガワ",
	}
	jaFiller = []string{
		"送料無料でお届けします。",
		"ギフト対応も承ります。",
		"レビューを書いてポイントゲット。",
		"在庫限りの特別価格です。",
		"ラッピング無料サービス実施中。",
		"お買い上げ金額に応じてクーポン進呈。",
		"翌日配送に対応しています。",
		"正規品保証付きの商品です。",
	}
	colorAliases    = []string{"カラー", "色", "カラーバリエーション"}
	makerAliases    = []string{"メーカー", "製造元", "ブランド"}
	weightAliases   = []string{"重量", "本体重量", "重さ"}
	materialAliases = []string{"素材", "材質"}
	sizeAliases     = []string{"サイズ", "寸法"}
	countryAliases  = []string{"原産国", "生産国", "製造国"}
)

// German value banks.
var (
	deColors    = []string{"schwarz", "weiß", "anthrazit", "silber", "grün", "braun", "rot"}
	deMaterials = []string{"Edelstahl", "verzinkter Stahl", "Kunststoff", "Aluminium", "Holz"}
	deBrands    = []string{"Brauheim", "Stahlwerk", "Gartenmeister", "Nordhaus", "Falkenbach"}
	deFiller    = []string{
		"Kostenloser Versand innerhalb Deutschlands.",
		"Jetzt bestellen und sparen.",
		"Qualität direkt vom Hersteller.",
		"Schnelle Lieferung in 2 Tagen.",
		"Zufriedenheitsgarantie inklusive.",
	}
)

// Tennis is a clean, well-specified category (seed precision 100% in the
// paper's Table I).
func Tennis() Category {
	return Category{
		Name: "Tennis", Lang: "ja", Items: 400, DictTableProb: 0.26,
		Noise: 0.08, Merchants: 12, Brands: jaBrands, Noun: "テニスラケット", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("カラー", colorAliases, jaColors, 0.7, 0.8),
			catAttr("メーカー", makerAliases, jaBrands, 0.8, 0.9),
			catAttr("グリップサイズ", []string{"グリップ"}, []string{"G1", "G2", "G3", "G4"}, 0.6, 0.7),
			catAttr("素材", materialAliases, []string{"カーボン", "グラファイト", "アルミ", "チタン"}, 0.6, 0.7),
			numAttr("重量", weightAliases, 250, 340, "g", 0.1, 0.7, 0.8),
			numAttr("全長", []string{"長さ"}, 68, 74, "cm", 0.4, 0.4, 0.5),
			catAttr("ガット", []string{"ストリング"}, []string{"張り上げ済み", "フレームのみ", "ナイロンガット"}, 0.5, 0.6),
		},
	}
}

// Kitchen has mid-level noise and a broad attribute mix.
func Kitchen() Category {
	return Category{
		Name: "Kitchen", Lang: "ja", Items: 400, DictTableProb: 0.20,
		Noise: 0.2, Merchants: 14, Brands: jaBrands, Noun: "キッチン用品", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("カラー", colorAliases, jaColors, 0.6, 0.7),
			catAttr("素材", materialAliases, []string{"ステンレス", "ホーロー", "アルミ", "銅", "鉄", "陶器"}, 0.7, 0.8),
			numAttr("容量", []string{"容量目安"}, 1, 8, "L", 0.5, 0.6, 0.7),
			numAttr("サイズ", sizeAliases, 10, 45, "cm", 0.3, 0.6, 0.6),
			catAttr("メーカー", makerAliases, jaBrands, 0.6, 0.8),
			catAttr("原産国", countryAliases, jaCountries, 0.5, 0.6),
			catAttr("食洗機対応", nil, []string{"対応", "非対応"}, 0.4, 0.5),
		},
	}
}

// Cosmetics is a large, fairly clean category (seed precision 100% for
// pairs in Table I) with very high product coverage.
func Cosmetics() Category {
	return Category{
		Name: "Cosmetics", Lang: "ja", Items: 420, DictTableProb: 0.37,
		Noise: 0.15, Merchants: 16, Brands: jaBrands, Noun: "化粧品", BrandAttr: "ブランド",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			numAttr("内容量", []string{"容量"}, 15, 500, "ml", 0.2, 0.8, 0.9),
			catAttr("ブランド", []string{"メーカー", "製造販売元"}, jaBrands, 0.8, 0.9),
			catAttr("原産国", countryAliases, jaCountries, 0.6, 0.7),
			catAttr("肌質", []string{"対応肌質"}, []string{"乾燥肌", "敏感肌", "普通肌", "脂性肌", "混合肌"}, 0.5, 0.6),
			catAttr("香り", []string{"フレグランス"}, []string{"ローズ", "シトラス", "ラベンダー", "無香料", "ムスク"}, 0.5, 0.6),
			catAttr("分類", []string{"種別"}, []string{"化粧水", "乳液", "美容液", "クリーム", "洗顔料"}, 0.6, 0.7),
		},
	}
}

// Garden is the paper's problem category: tiny seed (1% table coverage in
// the text, 8.3% triple coverage), sparse descriptions, the shipping-weight
// trap, and the 花形 (flower shape) color distractor that semantic cleaning
// must remove.
func Garden() Category {
	c := Category{
		Name: "Garden", Lang: "ja", Items: 380, DictTableProb: 0.10,
		Noise: 0.5, Merchants: 18, Brands: jaBrands, Noun: "ガーデン用品",
		FillerSentences: append([]string{
			"屋外でも安心してお使いいただけます。",
			"花形デザインが人気のシリーズです。",
			"ガーデニングの必需品です。",
		}, jaFiller...),
		Attributes: []Attribute{
			{
				Name: "カラー", Aliases: colorAliases, Kind: Categorical,
				Values: jaColors, MentionProb: 0.5, TableProb: 0.7,
				TrapSentences: []string{"色合いは%vのデザインです。"},
			},
			catAttr("素材", materialAliases, []string{"木製", "プラスチック", "スチール", "ラタン", "テラコッタ"}, 0.5, 0.7),
			numAttr("サイズ", sizeAliases, 20, 180, "cm", 0.2, 0.4, 0.5),
			{
				Name: "重量", Aliases: weightAliases, Kind: Numeric,
				NumMin: 1, NumMax: 25, Unit: "kg", DecimalProb: 0.35,
				MentionProb: 0.45, TableProb: 0.6,
				TrapSentences: []string{
					"配送時の重量は%vまで対応します。",
					"梱包後の重量は%vになります。",
				},
			},
			catAttr("原産国", countryAliases, jaCountries, 0.35, 0.5),
		},
	}
	// The color distractor: a value-shaped noise word that co-occurs with
	// colors but is not a color. Planted through the trap machinery with a
	// fixed distractor value.
	c.Attributes[0].TrapValues = []string{"花形"}
	return c
}

// Shoes has decimal-heavy sizes and mid noise.
func Shoes() Category {
	return Category{
		Name: "Shoes", Lang: "ja", Items: 400, DictTableProb: 0.05,
		Noise: 0.25, Merchants: 14, Brands: jaBrands, Noun: "シューズ", BrandAttr: "ブランド",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			numAttr("サイズ", sizeAliases, 22, 29, "cm", 0.6, 0.8, 0.9),
			catAttr("カラー", colorAliases, jaColors, 0.7, 0.8),
			catAttr("素材", materialAliases, jaMaterials, 0.6, 0.7),
			catAttr("ブランド", makerAliases, jaBrands, 0.7, 0.8),
			numAttr("ヒール高", []string{"ヒール"}, 1, 12, "cm", 0.5, 0.4, 0.5),
			catAttr("原産国", countryAliases, jaCountries, 0.4, 0.5),
			catAttr("ワイズ", []string{"足幅"}, []string{"E", "2E", "3E", "4E"}, 0.4, 0.5),
		},
	}
}

// LadiesBags is the paper's best-covered category (~40% of products carry a
// dictionary table).
func LadiesBags() Category {
	return Category{
		Name: "Ladies Bags", Lang: "ja", Items: 420, DictTableProb: 0.40,
		Noise: 0.1, Merchants: 16, Brands: jaBrands, Noun: "レディースバッグ", BrandAttr: "ブランド",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("カラー", colorAliases, jaColors, 0.8, 0.9),
			catAttr("素材", materialAliases, jaMaterials, 0.7, 0.8),
			catAttr("ブランド", makerAliases, jaBrands, 0.8, 0.9),
			numAttr("重量", weightAliases, 200, 1500, "g", 0.1, 0.6, 0.7),
			numAttr("サイズ", sizeAliases, 20, 50, "cm", 0.3, 0.6, 0.7),
			catAttr("原産国", countryAliases, jaCountries, 0.5, 0.6),
			catAttr("開閉方式", []string{"開閉"}, []string{"ファスナー", "マグネット", "ボタン", "オープン"}, 0.5, 0.6),
		},
	}
}

// DigitalCameras is the paper's high-precision category, with the complex
// attributes of §VIII-C: (A1) shutter speed, (A2) effective pixels — easily
// confused with total pixels — and (A3) weight.
func DigitalCameras() Category {
	return Category{
		Name: "Digital Cameras", Lang: "ja", Items: 420, DictTableProb: 0.12,
		Noise: 0.05, Merchants: 10, Brands: jaBrands, Noun: "デジタルカメラ", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("メーカー", makerAliases, jaBrands, 0.8, 0.9),
			catAttr("カラー", colorAliases, jaColors, 0.6, 0.7),
			// Effective vs total pixels and optical vs digital zoom are the
			// paper's confusable pairs: same value *shape* (so the tagger
			// confuses them) but disjoint exact values (so attribute
			// aggregation cannot erase one into the other).
			compAttr("有効画素数", []string{"有効画素"},
				[]string{"約#,#00万画素", "#00万画素", "約#0万画素"}, 0.6, 0.8),
			compAttr("総画素数", []string{"総画素"},
				[]string{"約#,#50万画素", "#50万画素"}, 0.4, 0.6),
			numAttr("光学ズーム", nil, 10, 60, "倍", 0, 0.5, 0.7),
			numAttr("デジタルズーム", nil, 2, 8, "倍", 0, 0.4, 0.6),
			compAttr("シャッタースピード", []string{"シャッター速度"},
				[]string{"1/#000秒〜30秒", "1/#000秒", "1〜1/#00秒"}, 0.35, 0.6),
			numAttr("重量", weightAliases, 90, 900, "g", 0.1, 0.6, 0.8),
			numAttr("液晶サイズ", []string{"モニター"}, 2, 3, "型", 0.8, 0.4, 0.6),
		},
	}
}

// VacuumCleaner carries the paper's ablation workloads: the integer-heavy
// weight attribute behind the diversification experiment (§VIII-A) and the
// type / container / power-supply complex attributes of §VIII-C whose
// specialised-model precision collapses in §VIII-D.
func VacuumCleaner() Category {
	return Category{
		Name: "Vacuum Cleaner", Lang: "ja", Items: 420, DictTableProb: 0.27,
		Noise: 0.15, Merchants: 12, Brands: jaBrands, Noun: "掃除機", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			// B1–B3 are deliberately sparse: the paper reports their global-
			// model coverage at roughly 10% (§VIII-C), which is what leaves
			// the specialised models of Figure 8 room to multiply it.
			catAttr("タイプ", nil, []string{"キャニスター型", "スティック型", "ロボット型", "ハンディ型", "布団用"}, 0.18, 0.35),
			catAttr("集じん方式", []string{"集塵方式"}, []string{"サイクロン式", "紙パック式", "カプセル式"}, 0.15, 0.3),
			catAttr("電源方式", []string{"電源"}, []string{"コード式", "充電式", "乾電池式"}, 0.15, 0.3),
			{
				Name: "重量", Aliases: weightAliases, Kind: Numeric,
				NumMin: 1, NumMax: 7, Unit: "kg", DecimalProb: 0.4,
				MentionProb: 0.65, TableProb: 0.8,
			},
			catAttr("メーカー", makerAliases, jaBrands, 0.7, 0.9),
			catAttr("カラー", colorAliases, jaColors, 0.5, 0.6),
			numAttr("消費電力", nil, 100, 1200, "W", 0, 0.5, 0.7),
			numAttr("集じん容量", []string{"ダストボックス容量"}, 1, 2, "L", 0.8, 0.4, 0.6),
		},
	}
}

// Golf through Toys fill out the paper's 18 Japanese categories.

func Golf() Category {
	return Category{
		Name: "Golf", Lang: "ja", Items: 350, DictTableProb: 0.22,
		Noise: 0.15, Merchants: 12, Brands: jaBrands, Noun: "ゴルフクラブ", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("番手", nil, []string{"1W", "3W", "5W", "5I", "7I", "9I", "PW", "SW"}, 0.7, 0.8),
			catAttr("シャフト", []string{"シャフト素材"}, []string{"カーボン", "スチール"}, 0.6, 0.7),
			numAttr("ロフト角", []string{"ロフト"}, 9, 58, "度", 0.5, 0.5, 0.7),
			catAttr("フレックス", nil, []string{"R", "S", "SR", "X", "L"}, 0.6, 0.7),
			catAttr("メーカー", makerAliases, jaBrands, 0.7, 0.9),
			numAttr("重量", weightAliases, 280, 460, "g", 0.2, 0.5, 0.6),
			catAttr("カラー", colorAliases, jaColors, 0.4, 0.5),
		},
	}
}

func Watches() Category {
	return Category{
		Name: "Watches", Lang: "ja", Items: 380, DictTableProb: 0.3,
		Noise: 0.12, Merchants: 14, Brands: jaBrands, Noun: "腕時計", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("文字盤色", []string{"文字盤カラー"}, jaColors, 0.6, 0.7),
			catAttr("ベルト素材", []string{"バンド素材"}, jaMaterials, 0.6, 0.7),
			numAttr("ケース径", []string{"ケースサイズ"}, 28, 46, "mm", 0.5, 0.6, 0.8),
			numAttr("防水性能", []string{"防水"}, 3, 20, "気圧", 0, 0.5, 0.6),
			catAttr("ムーブメント", []string{"駆動方式"}, []string{"クォーツ", "自動巻き", "手巻き", "ソーラー"}, 0.6, 0.8),
			catAttr("メーカー", makerAliases, jaBrands, 0.8, 0.9),
			numAttr("重量", weightAliases, 40, 180, "g", 0.3, 0.4, 0.5),
		},
	}
}

// Rings carries the length-vs-width confusable pair the paper mentions.
func Rings() Category {
	return Category{
		Name: "Rings", Lang: "ja", Items: 350, DictTableProb: 0.25,
		Noise: 0.2, Merchants: 14, Brands: jaBrands, Noun: "リング", BrandAttr: "ブランド",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("素材", materialAliases, []string{"K18", "K10", "プラチナ", "シルバー925", "ステンレス"}, 0.8, 0.9),
			numAttr("号数", []string{"リングサイズ"}, 5, 23, "号", 0, 0.7, 0.8),
			catAttr("石", []string{"宝石", "ストーン"}, []string{"ダイヤモンド", "サファイア", "ルビー", "パール", "エメラルド"}, 0.6, 0.7),
			numAttr("幅", nil, 1, 12, "mm", 0.6, 0.5, 0.6),
			numAttr("全長", []string{"長さ"}, 15, 60, "mm", 0.4, 0.3, 0.4),
			catAttr("ブランド", makerAliases, jaBrands, 0.6, 0.8),
		},
	}
}

func Wine() Category {
	return Category{
		Name: "Wine", Lang: "ja", Items: 380, DictTableProb: 0.3,
		Noise: 0.1, Merchants: 12, Brands: jaBrands, Noun: "ワイン",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("種類", []string{"タイプ"}, []string{"赤ワイン", "白ワイン", "ロゼ", "スパークリング"}, 0.8, 0.9),
			catAttr("産地", []string{"生産地", "原産地"}, []string{"フランス", "イタリア", "チリ", "スペイン", "日本"}, 0.7, 0.8),
			numAttr("容量", []string{"内容量"}, 375, 750, "ml", 0, 0.7, 0.8),
			numAttr("ヴィンテージ", []string{"収穫年"}, 1998, 2018, "年", 0, 0.5, 0.6),
			catAttr("品種", []string{"ぶどう品種"}, []string{"カベルネ", "メルロー", "シャルドネ", "ピノノワール", "シラー"}, 0.6, 0.7),
			numAttr("アルコール度数", []string{"度数"}, 9, 15, "%", 0.6, 0.5, 0.6),
		},
	}
}

func PetSupplies() Category {
	return Category{
		Name: "Pet Supplies", Lang: "ja", Items: 350, DictTableProb: 0.15,
		Noise: 0.3, Merchants: 14, Brands: jaBrands, Noun: "ペット用品",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("対象", []string{"対象ペット"}, []string{"犬用", "猫用", "小動物用"}, 0.7, 0.8),
			numAttr("サイズ", sizeAliases, 10, 90, "cm", 0.2, 0.5, 0.6),
			catAttr("素材", materialAliases, jaMaterials, 0.5, 0.6),
			catAttr("カラー", colorAliases, jaColors, 0.5, 0.6),
			numAttr("重量", weightAliases, 100, 3000, "g", 0.1, 0.4, 0.5),
			catAttr("対象年齢", []string{"ライフステージ"}, []string{"成犬用", "子犬用", "シニア用", "全年齢"}, 0.4, 0.5),
		},
	}
}

func Audio() Category {
	return Category{
		Name: "Audio", Lang: "ja", Items: 380, DictTableProb: 0.2,
		Noise: 0.12, Merchants: 12, Brands: jaBrands, Noun: "オーディオ", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("タイプ", nil, []string{"オーバーイヤー", "インイヤー", "骨伝導", "スピーカー"}, 0.6, 0.7),
			catAttr("接続方式", []string{"接続"}, []string{"Bluetooth", "有線", "USB", "ワイヤレス"}, 0.7, 0.8),
			numAttr("再生時間", []string{"連続再生時間"}, 4, 50, "時間", 0.2, 0.5, 0.7),
			numAttr("重量", weightAliases, 15, 400, "g", 0.3, 0.5, 0.6),
			catAttr("カラー", colorAliases, jaColors, 0.6, 0.7),
			catAttr("メーカー", makerAliases, jaBrands, 0.7, 0.9),
		},
	}
}

func Bicycles() Category {
	return Category{
		Name: "Bicycles", Lang: "ja", Items: 350, DictTableProb: 0.18,
		Noise: 0.2, Merchants: 12, Brands: jaBrands, Noun: "自転車", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			numAttr("タイヤサイズ", []string{"タイヤ"}, 14, 29, "インチ", 0, 0.7, 0.8),
			numAttr("変速段数", []string{"変速"}, 3, 27, "段", 0, 0.6, 0.7),
			catAttr("フレーム素材", []string{"フレーム"}, []string{"アルミ", "クロモリ", "カーボン", "スチール"}, 0.6, 0.7),
			catAttr("カラー", colorAliases, jaColors, 0.6, 0.7),
			numAttr("重量", weightAliases, 8, 22, "kg", 0.5, 0.5, 0.7),
			catAttr("メーカー", makerAliases, jaBrands, 0.6, 0.8),
		},
	}
}

func Furniture() Category {
	return Category{
		Name: "Furniture", Lang: "ja", Items: 350, DictTableProb: 0.22,
		Noise: 0.25, Merchants: 16, Brands: jaBrands, Noun: "家具", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			catAttr("素材", materialAliases, []string{"木製", "スチール", "ガラス", "合板", "無垢材"}, 0.7, 0.8),
			catAttr("カラー", colorAliases, jaColors, 0.6, 0.7),
			numAttr("幅", nil, 30, 200, "cm", 0.3, 0.6, 0.7),
			numAttr("奥行", []string{"奥行き"}, 30, 90, "cm", 0.3, 0.5, 0.6),
			numAttr("高さ", nil, 30, 220, "cm", 0.3, 0.5, 0.6),
			numAttr("重量", weightAliases, 3, 60, "kg", 0.3, 0.4, 0.5),
			catAttr("組立", []string{"組み立て"}, []string{"完成品", "要組立"}, 0.5, 0.6),
		},
	}
}

// BabyCarriers is the homogeneous baby category of §VIII-E (85.15%
// precision in the paper).
func BabyCarriers() Category {
	return Category{
		Name: "Baby Carriers", Lang: "ja", Items: 350, DictTableProb: 0.2,
		Noise: 0.2, Merchants: 12, Brands: jaBrands, Noun: "抱っこ紐", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			compAttr("対象月齢", []string{"使用月齢"},
				[]string{"#ヶ月〜#6ヶ月", "新生児〜#4ヶ月"}, 0.7, 0.8),
			numAttr("耐荷重", nil, 9, 20, "kg", 0.3, 0.6, 0.7),
			catAttr("カラー", colorAliases, jaColors, 0.7, 0.8),
			catAttr("素材", materialAliases, jaMaterials, 0.5, 0.6),
			catAttr("メーカー", makerAliases, jaBrands, 0.7, 0.8),
			numAttr("重量", weightAliases, 300, 900, "g", 0.2, 0.5, 0.6),
			catAttr("安全基準", []string{"基準"}, []string{"SG基準", "EN基準"}, 0.4, 0.5),
		},
	}
}

// BabyClothes and Toys exist to build the heterogeneous Baby Goods parent
// of §VIII-E: they reuse attribute names of BabyCarriers (サイズ, 素材,
// カラー, メーカー, 対象年齢) with different, partially overlapping value
// ranges, which is exactly what renders the merged model imprecise.
func BabyClothes() Category {
	return Category{
		Name: "Baby Clothes", Lang: "ja", Items: 350, DictTableProb: 0.2,
		Noise: 0.2, Merchants: 12, Brands: jaBrands, Noun: "ベビー服", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			numAttr("サイズ", sizeAliases, 60, 100, "cm", 0, 0.8, 0.9),
			catAttr("素材", materialAliases, []string{"コットン", "オーガニックコットン", "ポリエステル", "フライス"}, 0.7, 0.8),
			catAttr("カラー", colorAliases, jaColors, 0.7, 0.8),
			catAttr("メーカー", makerAliases, jaBrands, 0.6, 0.7),
			catAttr("原産国", countryAliases, jaCountries, 0.4, 0.5),
		},
	}
}

func Toys() Category {
	return Category{
		Name: "Toys", Lang: "ja", Items: 350, DictTableProb: 0.18,
		Noise: 0.25, Merchants: 14, Brands: jaBrands, Noun: "おもちゃ", BrandAttr: "メーカー",
		FillerSentences: jaFiller,
		Attributes: []Attribute{
			numAttr("対象年齢", []string{"対象"}, 1, 12, "歳以上", 0, 0.7, 0.8),
			catAttr("素材", materialAliases, []string{"木製", "プラスチック", "布製", "紙製"}, 0.6, 0.7),
			catAttr("カラー", colorAliases, jaColors, 0.4, 0.5),
			catAttr("メーカー", makerAliases, jaBrands, 0.6, 0.8),
			catAttr("電池", []string{"使用電池"}, []string{"単3電池", "単4電池", "ボタン電池", "不要"}, 0.5, 0.6),
			numAttr("サイズ", sizeAliases, 5, 60, "cm", 0.2, 0.5, 0.6),
			// 適応身長 overlaps Baby Clothes' サイズ range (60–100cm); in
			// the merged Baby Goods parent of §VIII-E the two become
			// indistinguishable for bare mentions, one of the value
			// collisions that make heterogeneous categories imprecise.
			numAttr("適応身長", []string{"身長目安"}, 75, 130, "cm", 0, 0.35, 0.4),
		},
	}
}

// German categories (§VII-B: mailbox, coffee machines, garden).

func MailboxDE() Category {
	return Category{
		Name: "Mailbox (DE)", Lang: "de", Items: 240, DictTableProb: 0.3,
		Noise: 0.12, Merchants: 8, Brands: deBrands, Noun: "Briefkasten",
		FillerSentences: deFiller,
		Attributes: []Attribute{
			catAttr("Material", []string{"Werkstoff"}, deMaterials, 0.7, 0.8),
			catAttr("Farbe", []string{"Farben"}, deColors, 0.7, 0.8),
			numAttr("Höhe", nil, 30, 120, "cm", 0.3, 0.6, 0.7),
			numAttr("Breite", nil, 25, 60, "cm", 0.3, 0.5, 0.6),
			catAttr("Montageart", []string{"Montage"}, []string{"Wandmontage", "Standmontage", "Zaunmontage"}, 0.6, 0.7),
			numAttr("Gewicht", []string{"Eigengewicht"}, 2, 18, "kg", 0.4, 0.5, 0.6),
			catAttr("Schloss", nil, []string{"Zylinderschloss", "Zahlenschloss"}, 0.4, 0.5),
		},
	}
}

func CoffeeMachinesDE() Category {
	return Category{
		Name: "Coffee Machines (DE)", Lang: "de", Items: 220, DictTableProb: 0.25,
		Noise: 0.15, Merchants: 8, Brands: deBrands, Noun: "Kaffeemaschine", BrandAttr: "Marke",
		FillerSentences: deFiller,
		Attributes: []Attribute{
			numAttr("Leistung", nil, 600, 1500, "W", 0, 0.7, 0.8),
			numAttr("Fassungsvermögen", []string{"Kapazität"}, 1, 2, "l", 0.7, 0.6, 0.7),
			catAttr("Farbe", []string{"Farben"}, deColors, 0.6, 0.7),
			catAttr("Material", []string{"Werkstoff"}, deMaterials, 0.5, 0.6),
			numAttr("Druck", []string{"Pumpendruck"}, 9, 19, "bar", 0, 0.5, 0.6),
			catAttr("Marke", []string{"Hersteller"}, deBrands, 0.7, 0.8),
			catAttr("Mahlwerk", nil, []string{"Keramikmahlwerk", "Edelstahlmahlwerk", "ohne Mahlwerk"}, 0.4, 0.5),
		},
	}
}

func GardenDE() Category {
	return Category{
		Name: "Garden (DE)", Lang: "de", Items: 240, DictTableProb: 0.12,
		Noise: 0.4, Merchants: 10, Brands: deBrands, Noun: "Gartenmöbel",
		FillerSentences: deFiller,
		Attributes: []Attribute{
			catAttr("Material", []string{"Werkstoff"}, []string{"Holz", "Polyrattan", "Metall", "Kunststoff"}, 0.6, 0.7),
			catAttr("Farbe", []string{"Farben"}, deColors, 0.6, 0.7),
			numAttr("Höhe", nil, 40, 200, "cm", 0.3, 0.5, 0.6),
			numAttr("Gewicht", []string{"Eigengewicht"}, 2, 40, "kg", 0.4, 0.4, 0.5),
			catAttr("Herkunftsland", []string{"Herstellungsland"}, []string{"Deutschland", "Polen", "China", "Vietnam"}, 0.4, 0.5),
		},
	}
}

// JapaneseCategories returns the 18 Japanese evaluation categories.
func JapaneseCategories() []Category {
	return []Category{
		Tennis(), Kitchen(), Cosmetics(), Garden(), Shoes(), LadiesBags(),
		DigitalCameras(), VacuumCleaner(), Golf(), Watches(), Rings(), Wine(),
		PetSupplies(), Audio(), Bicycles(), Furniture(), BabyCarriers(), Toys(),
	}
}

// GermanCategories returns the 3 German evaluation categories.
func GermanCategories() []Category {
	return []Category{MailboxDE(), CoffeeMachinesDE(), GardenDE()}
}

// TableCategories returns the 8 categories of the paper's Tables I–III in
// the paper's column order.
func TableCategories() []Category {
	return []Category{
		Tennis(), Kitchen(), Cosmetics(), Garden(), Shoes(), LadiesBags(),
		DigitalCameras(), VacuumCleaner(),
	}
}

// CategoryByName looks a category up across all built-in schemas.
func CategoryByName(name string) (Category, bool) {
	all := append(JapaneseCategories(), GermanCategories()...)
	all = append(all, BabyClothes())
	for _, c := range all {
		if c.Name == name {
			return c, true
		}
	}
	return Category{}, false
}
