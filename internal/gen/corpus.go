package gen

import (
	"context"
	"fmt"
	"strings"
	"unicode"

	"repro/internal/faultinject"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/seed"
	"repro/internal/text"
	"repro/internal/workload"
)

// Page is one generated product page.
type Page struct {
	ID   string
	HTML string
}

// TruthTriple is one referee judgment, playing the role of the paper's
// human-annotated truth sample: the page either genuinely states the value
// for the product (Correct) or states it in a misleading context — secondary
// product, shipping weight, junk cell — that an annotator would reject.
// Attribute is canonical and Value is normalised (see NormalizeValue).
type TruthTriple struct {
	ProductID string
	Attribute string
	Value     string
	Correct   bool
}

// Corpus is the generated dataset for one category (or a merged parent
// category): pages, query log, planted truth, and the referee's schema
// knowledge (alias table and per-attribute value domains).
type Corpus struct {
	Name    string
	Lang    string
	Pages   []Page
	Queries []string
	Truth   []TruthTriple
	// Workload records the page shape the corpus holds; the zero value means
	// detail-page, so every pre-refactor corpus keeps its meaning.
	Workload workload.Kind
	// Lexicon is the distant-supervision seed for title corpora: known
	// <attribute, value> pairs matched against the titles in place of
	// dictionary-table harvesting. Empty on detail-page corpora.
	Lexicon []seed.LexiconEntry
	// Aliases maps every attribute surface form to its canonical name.
	Aliases map[string]string
	// Domains maps canonical attribute names to the set of normalised
	// values actually rendered somewhere in the corpus.
	Domains map[string]map[string]bool
	// CanonicalAttrs lists the canonical attribute names.
	CanonicalAttrs []string
}

// Options configures corpus generation.
type Options struct {
	Seed  uint64
	Items int // overrides Category.Items when > 0
	// IDOffset shifts the page-ID index: page i is minted as index
	// i+IDOffset. Delta ingestion (paegen -append) sets it to the existing
	// corpus's page count so appended product IDs never collide with
	// committed ones. Zero (the default) reproduces historical IDs exactly.
	IDOffset int
	// Workers bounds how many pages are synthesised concurrently; zero means
	// one per CPU. Every page draws from its own RNG stream whose seed is
	// taken sequentially from the corpus generator before any page renders,
	// so the corpus is byte-identical for every Workers value.
	Workers int
	// Inject is an optional fault-injection hook fired once per page
	// (faultinject.StageGenPage); nil disables injection.
	Inject *faultinject.Injector
}

// NormalizeValue canonicalises a value string for truth matching: spaces
// removed, latin letters lower-cased. Both the generator (when planting
// truth) and the evaluator (when judging system triples) use it, so that
// "2,5 kg" and the span text "2,5kg" compare equal.
func NormalizeValue(v string) string {
	var sb strings.Builder
	for _, r := range v {
		if unicode.IsSpace(r) {
			continue
		}
		sb.WriteRune(unicode.ToLower(r))
	}
	return sb.String()
}

// CanonicalValue reports whether value is in the rendered domain of the
// canonical attribute — the referee's notion of a valid <attribute, value>
// association (the "Precision Pairs" judgment of Table I).
func (c *Corpus) CanonicalValue(attr, value string) bool {
	dom, ok := c.Domains[c.Canon(attr)]
	return ok && dom[NormalizeValue(value)]
}

// Canon maps an attribute surface form to its canonical name (identity for
// unknown names).
func (c *Corpus) Canon(attr string) string {
	if canon, ok := c.Aliases[attr]; ok {
		return canon
	}
	return attr
}

// Generate renders the full synthetic corpus for one category.
func Generate(cat Category, opt Options) *Corpus {
	c, err := GenerateCtx(context.Background(), cat, opt)
	if err != nil {
		// Only a canceled context or an armed fault injector can fail
		// generation, and Generate supplies neither.
		panic(err)
	}
	return c
}

// GenerateCtx is Generate with cancellation: page synthesis runs on a bounded
// worker pool (Options.Workers) and stops early when ctx is canceled or the
// fault injector fires. Every page renders from its own RNG stream whose seed
// is drawn sequentially before the pool starts, and per-page truth, domain
// values, and HTML are merged back in page order, so the corpus is
// byte-identical for every worker count.
func GenerateCtx(ctx context.Context, cat Category, opt Options) (*Corpus, error) {
	return GenerateStreamCtx(ctx, cat, opt, nil)
}

// PageResult is one rendered page together with its planted truth judgments,
// delivered in page order by GenerateStreamCtx.
type PageResult struct {
	Page  Page
	Truth []TruthTriple
}

// genChunk bounds how many pages are rendered (and therefore resident)
// between ordered emissions. It never changes output — per-page RNG seeds
// are drawn before any page renders — only peak memory.
const genChunk = 256

// GenerateStreamCtx renders the corpus in bounded-memory chunks, invoking
// emit once per page in page order — the streaming entry point paegen uses
// to write shards without ever materialising the whole corpus. Pages render
// concurrently inside each chunk (Options.Workers), but every per-page draw
// happens up front on the corpus RNG stream, so the emitted pages are
// byte-identical to Generate's for every worker count and chunking.
//
// The emit callback also receives each page's truth judgments, so callers
// can stream them to a sidecar; the same judgments accumulate in the
// returned Corpus (they feed query sampling and the referee's value
// domains). The returned Corpus carries everything except the page bodies:
// with a non-nil emit, Corpus.Pages stays nil.
func GenerateStreamCtx(ctx context.Context, cat Category, opt Options, emit func(PageResult) error) (*Corpus, error) {
	items := cat.Items
	if opt.Items > 0 {
		items = opt.Items
	}
	if cat.Merchants <= 0 {
		cat.Merchants = 10
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	rng := mat.NewRNG(seed ^ hashString(cat.Name))

	corpus := &Corpus{
		Name:    cat.Name,
		Lang:    cat.Lang,
		Aliases: make(map[string]string),
		Domains: make(map[string]map[string]bool),
	}
	for i := range cat.Attributes {
		a := &cat.Attributes[i]
		corpus.CanonicalAttrs = append(corpus.CanonicalAttrs, a.Name)
		corpus.Domains[a.Name] = make(map[string]bool)
		for _, al := range a.Aliases {
			corpus.Aliases[al] = a.Name
		}
	}

	merchants := newMerchants(cat, rng)
	templates := templatesFor(cat.Lang)

	// Per-page draws happen up front, in page order, on the corpus stream:
	// the merchant pick and the page's private RNG seed. The chunked pool
	// below may then render pages in any order without perturbing any draw
	// sequence.
	type pageJob struct {
		pid  string
		m    merchant
		seed uint64
	}
	jobs := make([]pageJob, items)
	for i := range jobs {
		pid := fmt.Sprintf("%s-%05d", slug(cat.Name), i+opt.IDOffset)
		jobs[i] = pageJob{
			pid:  pid,
			m:    merchants[rng.Intn(len(merchants))],
			seed: rng.Uint64() ^ hashString(pid),
		}
	}
	querySeed := rng.Uint64()

	sinks := make([]*pageSink, genChunk)
	for base := 0; base < items; base += genChunk {
		n := items - base
		if n > genChunk {
			n = genChunk
		}
		err := par.ForEach(ctx, opt.Workers, n, func(i int) error {
			if err := opt.Inject.Fire(faultinject.StageGenPage); err != nil {
				return err
			}
			sink := &pageSink{truthSeen: make(map[string]bool)}
			sink.page = buildPage(&cat, jobs[base+i].pid, jobs[base+i].m, templates,
				mat.NewRNG(jobs[base+i].seed), sink)
			sinks[i] = sink
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, s := range sinks[:n] {
			corpus.Truth = append(corpus.Truth, s.truth...)
			for _, dv := range s.domains {
				corpus.Domains[dv[0]][dv[1]] = true
			}
			if emit != nil {
				if err := emit(PageResult{Page: s.page, Truth: s.truth}); err != nil {
					return nil, err
				}
			} else {
				corpus.Pages = append(corpus.Pages, s.page)
			}
		}
	}

	corpus.Queries = buildQueries(corpus, items, mat.NewRNG(querySeed))
	return corpus, nil
}

// pageSink collects one page's output — rendered HTML, truth judgments, and
// the domain values it made real — for the ordered merge after the pool. The
// truth dedup that used to live on the corpus is page-local here, which is
// equivalent because every truth key starts with the page's unique product ID.
type pageSink struct {
	page      Page
	truthSeen map[string]bool
	truth     []TruthTriple
	domains   [][2]string // (canonical attribute, normalised value), in draw order
}

func (s *pageSink) addDomain(attr, value string) {
	s.domains = append(s.domains, [2]string{attr, NormalizeValue(value)})
}

func (s *pageSink) addTruth(pid, attr, value string, correct bool) {
	nv := NormalizeValue(value)
	key := pid + "\x00" + attr + "\x00" + nv
	if s.truthSeen[key] {
		return
	}
	// A trap judgment never overrides a genuine statement: if the page
	// truly states the value, the annotator marks it correct.
	if !correct {
		if s.truthSeen[pid+"\x00"+attr+"\x00"+nv+"\x00c"] {
			return
		}
	}
	s.truthSeen[key] = true
	if correct {
		s.truthSeen[key+"\x00c"] = true
	}
	s.truth = append(s.truth, TruthTriple{
		ProductID: pid, Attribute: attr, Value: nv, Correct: correct,
	})
}

// merchant is one seller style: a fixed alias per attribute, two favourite
// statement templates, and a sloppiness bias. Per-merchant phrasing is what
// makes first-iteration coverage partial — the seed only exposes the model
// to the phrasings of merchants whose pages carry dictionary tables, and
// later iterations discover the rest, which is the bootstrap effect the
// paper measures in Figure 3.
type merchant struct {
	alias     []string // per attribute index
	tmpls     [2]int
	sloppy    float64
	hasTables bool
}

func newMerchants(cat Category, rng *mat.RNG) []merchant {
	nTmpl := len(templatesFor(cat.Lang))
	ms := make([]merchant, cat.Merchants)
	// Dictionary tables are a merchant habit, not a per-page coin flip: the
	// fraction of table-using merchants is chosen so that the expected
	// per-page table rate matches DictTableProb. Because the initial seed
	// can only learn the phrasings of table-using merchants, first-
	// iteration coverage starts partial and the bootstrap earns the rest —
	// the growth the paper's Figures 3 and 5 measure.
	tableFrac := cat.DictTableProb / tableRateWithinMerchant
	numTable := int(tableFrac*float64(cat.Merchants) + 0.5)
	if numTable == 0 && cat.DictTableProb > 0 {
		numTable = 1 // every category has at least one table-using merchant
	}
	if numTable > cat.Merchants {
		numTable = cat.Merchants
	}
	tablePerm := rng.Perm(cat.Merchants)
	for i := range ms {
		al := make([]string, len(cat.Attributes))
		for j := range cat.Attributes {
			names := cat.Attributes[j].Aliases
			al[j] = names[rng.Intn(len(names))]
		}
		ms[i] = merchant{
			alias:  al,
			tmpls:  [2]int{rng.Intn(nTmpl), rng.Intn(nTmpl)},
			sloppy: rng.Float64() * cat.Noise,
		}
	}
	for _, idx := range tablePerm[:numTable] {
		ms[idx].hasTables = true
	}
	return ms
}

// tableRateWithinMerchant is how often a table-using merchant actually
// renders the table on a given page.
const tableRateWithinMerchant = 0.65

// buildPage renders one product page and plants its truth triples and domain
// values into the page-local sink.
func buildPage(cat *Category, pid string, m merchant,
	templates []string, rng *mat.RNG, sink *pageSink) Page {

	addTruth := sink.addTruth

	// Draw the product's own values.
	values := make([]string, len(cat.Attributes))
	brandIdx := -1
	for j := range cat.Attributes {
		values[j] = renderValue(&cat.Attributes[j], cat.Lang, rng)
		sink.addDomain(cat.Attributes[j].Name, values[j])
		if cat.Attributes[j].Name == cat.BrandAttr {
			brandIdx = j
		}
	}

	// Terse merchants write almost nothing beyond the title — the paper's
	// §VIII-D observation that "not every product description contains
	// attribute information" and the reason coverage never saturates.
	terse := rng.Float64() < 0.15+0.45*cat.Noise
	mentionScale := 1.0
	if terse {
		mentionScale = 0.12
	}

	// Title: usually the brand attribute's own value (consistent with the
	// body); occasionally a decorative shop brand that belongs to no
	// attribute — the paper's secondary-entity error source in miniature.
	title := cat.Noun
	switch {
	case brandIdx >= 0 && !terse && rng.Float64() < 0.55:
		title = values[brandIdx] + " " + cat.Noun
		addTruth(pid, cat.BrandAttr, values[brandIdx], true)
	case rng.Float64() < 0.08+0.4*cat.Noise:
		shop := cat.Brands[rng.Intn(len(cat.Brands))]
		title = shop + " " + cat.Noun
		if brandIdx >= 0 && shop != values[brandIdx] {
			addTruth(pid, cat.BrandAttr, shop, false)
		}
	}
	// A minority of titles surface one more attribute value.
	for j := range cat.Attributes {
		if j != brandIdx && rng.Float64() < 0.05 {
			title += " " + values[j]
			addTruth(pid, cat.Attributes[j].Name, values[j], true)
			break
		}
	}

	var sentences []string
	var fillersUsed []string
	pushFiller := func() {
		if len(cat.FillerSentences) > 0 {
			f := cat.FillerSentences[rng.Intn(len(cat.FillerSentences))]
			sentences = append(sentences, f)
			fillersUsed = append(fillersUsed, f)
		}
	}
	pushFiller()
	for j := range cat.Attributes {
		a := &cat.Attributes[j]
		if rng.Float64() < a.MentionProb*mentionScale {
			if rng.Float64() < 0.15 {
				// Bare statement: the value without its attribute name.
				bare := bareTemplatesFor(cat.Lang)
				tmpl := bare[rng.Intn(len(bare))]
				sentences = append(sentences, strings.Replace(tmpl, "%v", values[j], 1))
			} else {
				tmpl := templates[m.tmpls[rng.Intn(2)]]
				if rng.Float64() < 0.2 {
					tmpl = templates[rng.Intn(len(templates))]
				}
				sentences = append(sentences, renderStatement(tmpl, m.alias[j], values[j]))
			}
			addTruth(pid, a.Name, values[j], true)
		}
		// Trap sentences: misleading contexts whose extraction an annotator
		// rejects.
		for _, trap := range a.TrapSentences {
			if rng.Float64() < cat.Noise*0.5 {
				tv := trapValue(a, values[j], cat.Lang, rng)
				sentences = append(sentences, strings.Replace(trap, "%v", tv, 1))
				addTruth(pid, a.Name, tv, false)
			}
		}
		if rng.Float64() < 0.3 {
			pushFiller()
		}
	}
	// Secondary-product block.
	if rng.Float64() < cat.Noise*0.4 && len(cat.Attributes) > 0 {
		j := rng.Intn(len(cat.Attributes))
		a := &cat.Attributes[j]
		sv := renderValue(a, cat.Lang, rng)
		for sv == values[j] {
			sv = renderValue(a, cat.Lang, rng)
		}
		sink.addDomain(a.Name, sv)
		sentences = append(sentences, secondaryBlock(cat.Lang,
			cat.Brands[rng.Intn(len(cat.Brands))], cat.Noun, m.alias[j], sv))
		addTruth(pid, a.Name, sv, false)
	}
	pushFiller()

	// Dictionary table on a category-dependent minority of pages.
	var tableRows [][2]string
	if m.hasTables && rng.Float64() < tableRateWithinMerchant {
		for j := range cat.Attributes {
			a := &cat.Attributes[j]
			if rng.Float64() >= a.TableProb {
				continue
			}
			if rng.Float64() < m.sloppy*0.3 {
				junk := junkCellValues(cat.Lang)
				jv := junk[rng.Intn(len(junk))]
				tableRows = append(tableRows, [2]string{m.alias[j], jv})
				addTruth(pid, a.Name, jv, false)
				continue
			}
			// Sloppy merchants sometimes paste another attribute's value
			// into the cell; these frequent-but-wrong values survive the
			// seed value-cleaning and keep Table I's triple precision
			// below 100% in noisy categories, as in the paper.
			if rng.Float64() < m.sloppy*0.35 && len(cat.Attributes) > 1 {
				j2 := rng.Intn(len(cat.Attributes))
				for j2 == j {
					j2 = rng.Intn(len(cat.Attributes))
				}
				tableRows = append(tableRows, [2]string{m.alias[j], values[j2]})
				addTruth(pid, a.Name, values[j2], false)
				continue
			}
			tableRows = append(tableRows, [2]string{m.alias[j], values[j]})
			addTruth(pid, a.Name, values[j], true)
		}
		if len(tableRows) == 1 {
			tableRows = nil // single-row tables are layout, not dictionaries
		}
	}

	// The paper's truth sample is built from an early system version's
	// output, so annotators have judged (and rejected) the plausible false
	// positives too — extractions pairing a marketing-filler token with any
	// attribute. Without these judgments an over-tagging model would score
	// deceptively well, because its hallucinations would fall outside the
	// truth sample instead of counting as incorrect.
	for _, f := range fillersUsed {
		for _, tok := range valueLikeTokens(f, cat.Lang) {
			for j := range cat.Attributes {
				addTruth(pid, cat.Attributes[j].Name, tok, false)
			}
		}
	}

	return Page{ID: pid, HTML: pageHTML(title, sentences, tableRows)}
}

// valueLikeTokens returns the tokens of a filler sentence that an
// over-eager tagger plausibly extracts as attribute values: katakana runs
// and long latin words.
func valueLikeTokens(s, lang string) []string {
	var out []string
	for _, tok := range text.ForLanguage(lang).Tokenize(s) {
		switch tok.Script {
		case text.ScriptKatakana:
			if len([]rune(tok.Text)) >= 3 {
				out = append(out, tok.Text)
			}
		case text.ScriptLatin:
			if len([]rune(tok.Text)) >= 4 {
				out = append(out, tok.Text)
			}
		}
	}
	return out
}

// trapValue picks the misleading value used in a trap sentence: one of the
// attribute's explicit distractors, or a fresh value different from the
// product's own.
func trapValue(a *Attribute, own, lang string, rng *mat.RNG) string {
	if len(a.TrapValues) > 0 {
		return a.TrapValues[rng.Intn(len(a.TrapValues))]
	}
	for i := 0; i < 8; i++ {
		if v := renderValue(a, lang, rng); v != own {
			return v
		}
	}
	return renderValue(a, lang, rng)
}

// buildQueries samples the query log: mostly real values (popularity-
// weighted by how often they were stated), some brand+noun queries, some
// junk.
func buildQueries(c *Corpus, items int, rng *mat.RNG) []string {
	var queries []string
	correct := make([]TruthTriple, 0, len(c.Truth))
	for _, t := range c.Truth {
		if t.Correct {
			correct = append(correct, t)
		}
	}
	n := 2 * items
	for i := 0; i < n && len(correct) > 0; i++ {
		v := correct[rng.Intn(len(correct))].Value
		// Shoppers query round values ("2kg"), almost never exact decimals
		// ("2.3kg"); this skew is why decimal shapes vanish from the seed
		// unless value diversification re-admits them (§VIII-A).
		if strings.ContainsAny(v, ".,") && rng.Float64() < 0.9 {
			continue
		}
		queries = append(queries, v)
	}
	for i := 0; i < items/3; i++ {
		queries = append(queries, fmt.Sprintf("junkquery%d", rng.Intn(50)))
	}
	return queries
}

// Merge combines several corpora into one heterogeneous parent category, the
// §VIII-E setting (Baby Goods ⊃ carriers + clothes + toys). Alias tables and
// value domains are unioned; on alias conflicts the first corpus wins, which
// mirrors how a real parent taxonomy inherits ambiguity.
func Merge(name string, parts ...*Corpus) *Corpus {
	out := &Corpus{
		Name:    name,
		Aliases: make(map[string]string),
		Domains: make(map[string]map[string]bool),
	}
	seenAttr := make(map[string]bool)
	for _, p := range parts {
		if out.Lang == "" {
			out.Lang = p.Lang
		}
		out.Pages = append(out.Pages, p.Pages...)
		out.Queries = append(out.Queries, p.Queries...)
		out.Truth = append(out.Truth, p.Truth...)
		for alias, canon := range p.Aliases {
			if _, ok := out.Aliases[alias]; !ok {
				out.Aliases[alias] = canon
			}
		}
		for attr, dom := range p.Domains {
			if out.Domains[attr] == nil {
				out.Domains[attr] = make(map[string]bool)
			}
			for v := range dom {
				out.Domains[attr][v] = true
			}
		}
		for _, a := range p.CanonicalAttrs {
			if !seenAttr[a] {
				seenAttr[a] = true
				out.CanonicalAttrs = append(out.CanonicalAttrs, a)
			}
		}
	}
	return out
}

func slug(name string) string {
	return strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(name, " ", "-"), "(", ""))
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
