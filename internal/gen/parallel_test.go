package gen

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/par"
)

// TestGenerateDeterministicAcrossWorkers is the package's half of the
// pipeline-wide parallel-determinism contract: the corpus — pages, truth,
// queries, domains — is byte-identical for every worker count.
func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	base := Generate(Garden(), Options{Seed: 9, Items: 40, Workers: 1})
	for _, workers := range []int{2, 8} {
		c := Generate(Garden(), Options{Seed: 9, Items: 40, Workers: workers})
		if len(c.Pages) != len(base.Pages) {
			t.Fatalf("workers=%d: %d pages, want %d", workers, len(c.Pages), len(base.Pages))
		}
		for i := range c.Pages {
			if c.Pages[i] != base.Pages[i] {
				t.Fatalf("workers=%d: page %d differs from serial run", workers, i)
			}
		}
		if !reflect.DeepEqual(c.Truth, base.Truth) {
			t.Fatalf("workers=%d: truth differs from serial run", workers)
		}
		if !reflect.DeepEqual(c.Queries, base.Queries) {
			t.Fatalf("workers=%d: queries differ from serial run", workers)
		}
		if !reflect.DeepEqual(c.Domains, base.Domains) {
			t.Fatalf("workers=%d: domains differ from serial run", workers)
		}
	}
}

// TestGenerateCtxFaults proves the page pool's failure semantics: an injected
// error surfaces as a wrapped ErrInjected, a canceled context stops
// generation, and a worker panic is contained and re-panicked as a typed
// *par.WorkerPanic rather than crashing the process from a bare goroutine.
func TestGenerateCtxFaults(t *testing.T) {
	opt := func(inj *faultinject.Injector) Options {
		return Options{Seed: 3, Items: 20, Workers: 4, Inject: inj}
	}

	inj := faultinject.New(faultinject.Fault{
		Stage: faultinject.StageGenPage, Call: 1, Kind: faultinject.Error,
	})
	if _, err := GenerateCtx(context.Background(), Tennis(), opt(inj)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected error not surfaced: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateCtx(ctx, Tennis(), opt(nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context not surfaced: %v", err)
	}

	defer func() {
		r := recover()
		wp, ok := r.(*par.WorkerPanic)
		if !ok {
			t.Fatalf("recover() = %v, want *par.WorkerPanic", r)
		}
		if wp.Item != 0 {
			t.Fatalf("panic attributed to item %d, want 0", wp.Item)
		}
	}()
	inj = faultinject.New(faultinject.Fault{
		Stage: faultinject.StageGenPage, Call: 1, Kind: faultinject.Panic,
	})
	GenerateCtx(context.Background(), Tennis(), opt(inj))
	t.Fatal("expected panic")
}
