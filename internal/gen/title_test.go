package gen

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

func titleCat(t *testing.T) Category {
	t.Helper()
	cat, ok := CategoryByName("Vacuum Cleaner")
	if !ok {
		t.Fatal("Vacuum Cleaner category missing")
	}
	return cat
}

func TestGenerateTitlesDeterministicAcrossWorkers(t *testing.T) {
	cat := titleCat(t)
	base := GenerateTitles(cat, Options{Items: 70, Seed: 3, Workers: 1})
	for _, workers := range []int{2, 8} {
		c := GenerateTitles(cat, Options{Items: 70, Seed: 3, Workers: workers})
		if !reflect.DeepEqual(base.Pages, c.Pages) {
			t.Fatalf("pages differ between workers=1 and workers=%d", workers)
		}
		if !reflect.DeepEqual(base.Truth, c.Truth) {
			t.Fatalf("truth differs between workers=1 and workers=%d", workers)
		}
		if !reflect.DeepEqual(base.Lexicon, c.Lexicon) {
			t.Fatalf("lexicon differs between workers=1 and workers=%d", workers)
		}
		if !reflect.DeepEqual(base.Queries, c.Queries) {
			t.Fatalf("queries differ between workers=1 and workers=%d", workers)
		}
	}
}

func TestGenerateTitlesStreamMatchesMaterialized(t *testing.T) {
	cat := titleCat(t)
	base := GenerateTitles(cat, Options{Items: 40, Seed: 5})
	var pages []Page
	c, err := GenerateTitlesStreamCtx(context.Background(), cat, Options{Items: 40, Seed: 5},
		func(p PageResult) error { pages = append(pages, p.Page); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Pages, pages) {
		t.Fatal("streamed pages differ from materialized pages")
	}
	if !reflect.DeepEqual(base.Truth, c.Truth) || !reflect.DeepEqual(base.Lexicon, c.Lexicon) {
		t.Fatal("streamed metadata differs from materialized metadata")
	}
}

func TestGenerateTitlesShape(t *testing.T) {
	cat := titleCat(t)
	c := GenerateTitles(cat, Options{Items: 60, Seed: 2})
	if c.Workload != workload.Title {
		t.Fatalf("corpus workload = %q, want title", c.Workload)
	}
	if len(c.Pages) != 60 {
		t.Fatalf("pages = %d, want 60", len(c.Pages))
	}
	if len(c.Lexicon) == 0 {
		t.Fatal("title corpus has no lexicon: distant supervision has nothing to match")
	}
	for _, p := range c.Pages {
		if strings.ContainsAny(p.HTML, "<>") {
			t.Fatalf("title %s contains markup: %q", p.ID, p.HTML)
		}
		if !strings.Contains(p.HTML, cat.Noun) {
			t.Fatalf("title %s lacks the category noun: %q", p.ID, p.HTML)
		}
	}
}

func TestGenerateTitlesTruthJudgments(t *testing.T) {
	c := GenerateTitles(titleCat(t), Options{Items: 200, Seed: 7})
	byID := make(map[string]string, len(c.Pages))
	for _, p := range c.Pages {
		// Truth values are normalized by the referee; compare in that space.
		byID[p.ID] = NormalizeValue(p.HTML)
	}
	correct, incorrect := 0, 0
	for _, tr := range c.Truth {
		if tr.Correct {
			correct++
			if !strings.Contains(byID[tr.ProductID], tr.Value) {
				t.Fatalf("correct truth %+v not on title %q", tr, byID[tr.ProductID])
			}
		} else {
			incorrect++
		}
	}
	if correct == 0 || incorrect == 0 {
		t.Fatalf("truth sample needs both judgments: correct=%d incorrect=%d", correct, incorrect)
	}
}

func TestGenerateTitlesLexiconValuesExist(t *testing.T) {
	cat := titleCat(t)
	c := GenerateTitles(cat, Options{Items: 10, Seed: 4})
	attrs := make(map[string]bool, len(cat.Attributes))
	for _, a := range cat.Attributes {
		attrs[a.Name] = true
	}
	perAttr := make(map[string]int)
	for _, e := range c.Lexicon {
		if !attrs[e.Attr] {
			t.Fatalf("lexicon names unknown attribute %q", e.Attr)
		}
		if e.Value == "" {
			t.Fatalf("empty lexicon value for %q", e.Attr)
		}
		perAttr[e.Attr]++
	}
	for _, a := range cat.Attributes {
		if perAttr[a.Name] == 0 {
			t.Fatalf("attribute %q has no lexicon entries", a.Name)
		}
	}
}

func TestGenerateTitlesDiffersFromDetailPages(t *testing.T) {
	// Same category, same seed: the two workloads must not replay each
	// other's draw sequence, or a mixed experiment silently correlates.
	cat := titleCat(t)
	dp := Generate(cat, Options{Items: 20, Seed: 9})
	ti := GenerateTitles(cat, Options{Items: 20, Seed: 9})
	if dp.Pages[0].HTML == ti.Pages[0].HTML {
		t.Fatal("title corpus replays the detail-page draw sequence")
	}
	if dp.Workload.WithDefault() != workload.DetailPage {
		t.Fatalf("detail-page corpus workload = %q", dp.Workload)
	}
}
