package gen

import "testing"

func BenchmarkGenerateCategory(b *testing.B) {
	cat := VacuumCleaner()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := Generate(cat, Options{Seed: uint64(i + 1), Items: 100})
		if len(c.Pages) != 100 {
			b.Fatal("bad page count")
		}
	}
}
