package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/triples"
	"repro/internal/workload"
)

// stub is a fake paeserve replica speaking the internal/serve contract:
// /healthz with status+bundle fingerprint, /extract with the X-Pae-Bundle
// header. Wire-level misbehaviour is injected by wrapping the handler in
// faultinject.HTTPMiddleware.
type stub struct {
	fp       string        // fingerprint advertised on /healthz
	respFP   string        // fingerprint stamped on /extract responses
	wl       workload.Kind // workload advertised on /healthz ("" = not advertised)
	respWL   workload.Kind // workload stamped on /extract responses
	delay    time.Duration
	draining atomic.Bool
	inj      *faultinject.Injector
	srv      *httptest.Server
}

func newStub(t testing.TB, fp string, inj *faultinject.Injector) *stub {
	t.Helper()
	s := &stub{fp: fp, respFP: fp, inj: inj}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := serve.Health{Status: "ok", Bundle: s.fp, Model: "stub", Workload: s.wl}
		code := http.StatusOK
		if s.draining.Load() {
			h.Status, code = "draining", http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/extract", func(w http.ResponseWriter, r *http.Request) {
		if s.delay > 0 {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(s.delay):
			}
		}
		var req serve.Request
		_ = json.NewDecoder(r.Body).Decode(&req)
		pages := len(req.Pages)
		if pages == 0 {
			pages = 1
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(serve.BundleHeader, s.respFP)
		if s.respWL != "" {
			w.Header().Set(serve.WorkloadHeader, string(s.respWL))
		}
		_ = json.NewEncoder(w).Encode(serve.Response{
			Bundle:  s.respFP,
			Pages:   pages,
			Triples: []triples.Triple{{ProductID: "p1", Attribute: "weight", Value: "5 kg"}},
		})
	})
	s.srv = httptest.NewServer(faultinject.HTTPMiddleware(inj, mux))
	t.Cleanup(func() {
		// Reset lingering connections first so hung fault handlers unblock.
		s.srv.CloseClientConnections()
		s.srv.Close()
	})
	return s
}

// newRouter builds a Router over the stubs with deterministic jitter and a
// live recorder, registering cleanup.
func newRouter(t testing.TB, cfg Config, stubs ...*stub) (*Router, *obs.Recorder) {
	t.Helper()
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.srv.URL)
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(obs.Options{NoRuntimeStats: true})
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(rt.Close)
	return rt, cfg.Obs
}

const singleBody = `{"id":"p1","html":"<html>weight is 5 kg.</html>"}`
const batchBody = `{"pages":[{"id":"p1","html":"a"},{"id":"p2","html":"b"}]}`

func doExtract(rt *Router, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader(body))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w
}

func doGet(rt *Router, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w
}

// warmSkewed probes the fleet so stubs[0] ends Healthy while the rest stay
// Suspect, making the first pick deterministic. The others' injectors must
// fail their first two health probes, and the router's FailThreshold must be
// 3 so two failures do not demote them below Suspect.
func warmSkewed(t testing.TB, rt *Router) {
	t.Helper()
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())
	if got := rt.Backends()[0].State(); got != Healthy {
		t.Fatalf("backend 0 state = %v, want healthy", got)
	}
	for i, b := range rt.Backends()[1:] {
		if got := b.State(); got != Suspect {
			t.Fatalf("backend %d state = %v, want suspect", i+1, got)
		}
	}
}

// probeFail arms an injector that fails the first two health probes, used
// with warmSkewed to hold a backend at Suspect.
func probeFail() *faultinject.Injector {
	return faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPHealthz, Call: 1, Until: 2, Kind: faultinject.Error,
	})
}

func TestNew(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no backends should fail")
	}
	rt, err := New(Config{Backends: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer rt.Close()
	if got := rt.cfg.MaxAttempts; got != 3 {
		t.Fatalf("default MaxAttempts = %d, want 3", got)
	}
	if got := rt.Backends()[0].State(); got != Suspect {
		t.Fatalf("initial state = %v, want suspect", got)
	}
}

func TestBreakerTransitions(t *testing.T) {
	br := breaker{threshold: 2, cooldown: 20 * time.Millisecond}
	now := time.Now()
	if got := br.state(now); got != breakerClosed {
		t.Fatalf("initial state = %s, want closed", got)
	}
	if br.failure(now) {
		t.Fatal("failure below threshold should not open the circuit")
	}
	if !br.failure(now) {
		t.Fatal("failure at threshold should open the circuit")
	}
	if got := br.state(now); got != breakerOpen {
		t.Fatalf("state after threshold = %s, want open", got)
	}
	if br.tryTrial(now) {
		t.Fatal("trial must not run before the cooldown elapses")
	}
	if br.failure(now) {
		t.Fatal("straggler failure while open should not re-open")
	}

	later := now.Add(25 * time.Millisecond)
	if got := br.state(later); got != breakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", got)
	}
	if !br.tryTrial(later) {
		t.Fatal("first trial after cooldown should be admitted")
	}
	if br.tryTrial(later) {
		t.Fatal("second concurrent trial should be rejected")
	}
	// Trial fails: circuit re-opens.
	if !br.failure(later) {
		t.Fatal("failed trial should re-open the circuit")
	}
	if got := br.opens; got != 2 {
		t.Fatalf("opens = %d, want 2", got)
	}

	// Trial succeeds: circuit closes.
	later = later.Add(25 * time.Millisecond)
	if !br.tryTrial(later) {
		t.Fatal("trial after second cooldown should be admitted")
	}
	br.success()
	if got := br.state(later); got != breakerClosed {
		t.Fatalf("state after successful trial = %s, want closed", got)
	}
	if br.failure(later) {
		t.Fatal("single failure after close should not re-open (streak reset)")
	}
}

func TestHealthLadder(t *testing.T) {
	b := &Backend{url: "x"}
	step := func(ok, draining bool) State {
		_, now := b.onProbe(ok, draining, "fp", "", "", 2, 2)
		return now
	}
	// Suspect → Healthy takes rise=2 consecutive successes.
	if got := step(true, false); got != Suspect {
		t.Fatalf("after 1 ok probe: %v, want suspect", got)
	}
	if got := step(true, false); got != Healthy {
		t.Fatalf("after 2 ok probes: %v, want healthy", got)
	}
	// One rung per threshold on the way down; a lone failure does nothing.
	if got := step(false, false); got != Healthy {
		t.Fatalf("after 1 failed probe: %v, want healthy", got)
	}
	if got := step(false, false); got != Suspect {
		t.Fatalf("after 2 failed probes: %v, want suspect", got)
	}
	if got := step(false, false); got != Suspect {
		t.Fatalf("after 3 failed probes: %v, want suspect", got)
	}
	if got := step(false, false); got != Down {
		t.Fatalf("after 4 failed probes: %v, want down", got)
	}
	// Recovery climbs back one rung at a time.
	step(true, false)
	if got := step(true, false); got != Suspect {
		t.Fatalf("recovery rung 1: %v, want suspect", got)
	}
	step(true, false)
	if got := step(true, false); got != Healthy {
		t.Fatalf("recovery rung 2: %v, want healthy", got)
	}
	// Draining skips the ladder entirely: the backend asked us to stop.
	if got := step(true, true); got != Down {
		t.Fatalf("draining: %v, want down", got)
	}
	if b.Fingerprint() != "fp" {
		t.Fatalf("fingerprint = %q, want fp", b.Fingerprint())
	}
}

// TestFlappingProbes drives the prober against a backend whose health
// endpoint fails for probes 3..6 (a flap), asserting the full trajectory
// suspect → healthy → suspect → down → suspect → healthy.
func TestFlappingProbes(t *testing.T) {
	inj := faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPHealthz, Call: 3, Until: 6, Kind: faultinject.Error,
	})
	s := newStub(t, "fp-flap", inj)
	rt, rec := newRouter(t, Config{FailThreshold: 2, RiseThreshold: 2}, s)

	want := []State{Suspect, Healthy, Healthy, Suspect, Suspect, Down, Down, Suspect, Suspect, Healthy}
	b := rt.Backends()[0]
	for i, w := range want {
		rt.ProbeAll(t.Context())
		if got := b.State(); got != w {
			t.Fatalf("after probe %d: state = %v, want %v", i+1, got, w)
		}
	}
	if got := b.Fingerprint(); got != "fp-flap" {
		t.Fatalf("fingerprint = %q, want fp-flap", got)
	}
	if got := rec.Counter("fleet.probes"); got != 10 {
		t.Fatalf("fleet.probes = %d, want 10", got)
	}
	if got := rec.Counter("fleet.probe_failures"); got != 4 {
		t.Fatalf("fleet.probe_failures = %d, want 4", got)
	}
	// S→H, H→S, S→D, D→S, S→H.
	if got := rec.Counter("fleet.state_changes"); got != 5 {
		t.Fatalf("fleet.state_changes = %d, want 5", got)
	}
}

func TestDrainingProbeGoesStraightDown(t *testing.T) {
	s := newStub(t, "fp", nil)
	rt, _ := newRouter(t, Config{}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())
	if got := rt.Backends()[0].State(); got != Healthy {
		t.Fatalf("state = %v, want healthy", got)
	}
	s.draining.Store(true)
	rt.ProbeAll(t.Context())
	if got := rt.Backends()[0].State(); got != Down {
		t.Fatalf("state after draining probe = %v, want down (no threshold)", got)
	}
	// Router itself now reports unroutable.
	if w := doGet(rt, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("router /healthz = %d, want 503", w.Code)
	}
}

// TestRetriesAbsorbFailingBackend sends a request to a fleet whose preferred
// backend 500s every extraction: the retry lands on the other replica and
// the client sees a clean 200.
func TestRetriesAbsorbFailingBackend(t *testing.T) {
	bad := newStub(t, "fp", faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPExtract, Call: 1, Until: faultinject.Forever, Kind: faultinject.Error,
	}))
	good := newStub(t, "fp", probeFail())
	rt, rec := newRouter(t, Config{
		FailThreshold: 3, RetryBackoff: time.Millisecond,
	}, bad, good)
	warmSkewed(t, rt)

	w := doExtract(rt, singleBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	var resp serve.Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || len(resp.Triples) == 0 {
		t.Fatalf("bad response %s (err %v)", w.Body, err)
	}
	if got := w.Header().Get(serve.BundleHeader); got != "fp" {
		t.Fatalf("%s = %q, want fp", serve.BundleHeader, got)
	}
	if got := bad.inj.Calls(faultinject.StageHTTPExtract); got != 1 {
		t.Fatalf("bad backend saw %d extract calls, want 1", got)
	}
	if got := rec.Counter("fleet.retries"); got != 1 {
		t.Fatalf("fleet.retries = %d, want 1", got)
	}
	if got := rec.Counter("fleet.success"); got != 1 {
		t.Fatalf("fleet.success = %d, want 1", got)
	}
}

// TestWireFaultsContained covers the three wire-level fault kinds: a hung
// backend, a connection reset mid-request, and a slow-loris response. All
// three must burn one attempt and be absorbed by a retry onto the healthy
// replica.
func TestWireFaultsContained(t *testing.T) {
	for _, kind := range []faultinject.Kind{faultinject.Hang, faultinject.Reset, faultinject.SlowLoris} {
		t.Run(kind.String(), func(t *testing.T) {
			faulty := newStub(t, "fp", faultinject.New(faultinject.Fault{
				Stage: faultinject.StageHTTPExtract, Call: 1, Until: faultinject.Forever, Kind: kind,
			}))
			good := newStub(t, "fp", probeFail())
			rt, rec := newRouter(t, Config{
				FailThreshold:  3,
				AttemptTimeout: 100 * time.Millisecond, // hang/slow-loris die here
				RetryBackoff:   time.Millisecond,
			}, faulty, good)
			warmSkewed(t, rt)

			start := time.Now()
			w := doExtract(rt, singleBody)
			if w.Code != http.StatusOK {
				t.Fatalf("status = %d, body %s", w.Code, w.Body)
			}
			if got := rec.Counter("fleet.retries"); got != 1 {
				t.Fatalf("fleet.retries = %d, want 1", got)
			}
			if el := time.Since(start); el > 2*time.Second {
				t.Fatalf("request took %v; fault not contained by the attempt timeout", el)
			}
		})
	}
}

// TestBreakerOverHTTP exhausts a lone backend's failure budget, asserts the
// open circuit makes the fleet unroutable, then recovers it through a
// half-open trial.
func TestBreakerOverHTTP(t *testing.T) {
	s := newStub(t, "fp", faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPExtract, Call: 1, Until: 2, Kind: faultinject.Error,
	}))
	rt, rec := newRouter(t, Config{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	for i := 0; i < 2; i++ {
		if w := doExtract(rt, singleBody); w.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500 passthrough", i, w.Code)
		}
	}
	if got := rec.Counter("fleet.breaker_opens"); got != 1 {
		t.Fatalf("fleet.breaker_opens = %d, want 1", got)
	}
	// Open circuit: no routable backend, typed 503, router healthz degraded.
	w := doExtract(rt, singleBody)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "no routable backend") {
		t.Fatalf("open-circuit reply = %d %s, want typed 503", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("open-circuit 503 should carry Retry-After")
	}
	if w := doGet(rt, "/healthz"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("router /healthz with all circuits open = %d, want 503", w.Code)
	}

	// After the cooldown the half-open trial (fault expired) closes it.
	time.Sleep(60 * time.Millisecond)
	if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
		t.Fatalf("trial request = %d %s, want 200", w.Code, w.Body)
	}
	if w := doGet(rt, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("router /healthz after recovery = %d, want 200", w.Code)
	}
}

// TestLoadShedding fills the router's in-flight budget and asserts the
// degradation order: batches are shed first, singles pass until the hard
// cap, everything past it is shed with a typed 503 + Retry-After.
func TestLoadShedding(t *testing.T) {
	slow := newStub(t, "fp", nil)
	slow.delay = 150 * time.Millisecond
	rt, rec := newRouter(t, Config{MaxInflight: 2, BatchShedFraction: 0.6}, slow)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	// Occupy one slot. At inflight=2 > 0.6·2 a batch is shed while a single
	// still passes.
	var wg sync.WaitGroup
	occupy := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
					t.Errorf("occupying request failed: %d %s", w.Code, w.Body)
				}
			}()
		}
	}
	waitInflight := func(n int64) {
		deadline := time.Now().Add(2 * time.Second)
		for rt.inflight.Load() != n {
			if time.Now().After(deadline) {
				t.Fatalf("inflight never reached %d (at %d)", n, rt.inflight.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	occupy(1)
	waitInflight(1)
	w := doExtract(rt, batchBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch at 2/2 load = %d, want 503", w.Code)
	}
	var shed shedResponse
	if err := json.Unmarshal(w.Body.Bytes(), &shed); err != nil || !shed.Shed {
		t.Fatalf("shed reply not typed: %s (err %v)", w.Body, err)
	}
	if got := RetryAfter(w.Result().Header); got != time.Second {
		t.Fatalf("Retry-After = %v, want 1s", got)
	}
	if got := rec.Counter("fleet.shed_batch"); got != 1 {
		t.Fatalf("fleet.shed_batch = %d, want 1", got)
	}
	if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
		t.Fatalf("single at batch-shed level = %d, want 200 (only batches shed)", w.Code)
	}
	wg.Wait()

	// Fill the hard cap: now even singles are shed.
	occupy(2)
	waitInflight(2)
	w = doExtract(rt, singleBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("single past hard cap = %d, want 503", w.Code)
	}
	if got := rec.Counter("fleet.shed_full"); got != 1 {
		t.Fatalf("fleet.shed_full = %d, want 1", got)
	}
	wg.Wait()
}

// TestFingerprintPinning routes against a fleet running two different bundle
// versions: with the preferred replica failing, the retry must refuse the
// replica with the other fingerprint rather than stitch model versions
// together — unless mixing is explicitly allowed.
func TestFingerprintPinning(t *testing.T) {
	mkFleet := func(t *testing.T, mixed bool) (*Router, *obs.Recorder) {
		vA := newStub(t, "fp-a", faultinject.New(faultinject.Fault{
			Stage: faultinject.StageHTTPExtract, Call: 1, Until: faultinject.Forever, Kind: faultinject.Error,
		}))
		vB := newStub(t, "fp-b", probeFail())
		rt, rec := newRouter(t, Config{
			FailThreshold: 3, RetryBackoff: time.Millisecond, AllowMixedFingerprints: mixed,
		}, vA, vB)
		warmSkewed(t, rt)
		// One more round: vB's probe faults have expired, so it now
		// advertises fp-b (still Suspect — one success short of promotion).
		rt.ProbeAll(t.Context())
		if got := rt.Backends()[1].Fingerprint(); got != "fp-b" {
			t.Fatalf("vB fingerprint = %q, want fp-b", got)
		}
		return rt, rec
	}

	t.Run("pinned", func(t *testing.T) {
		rt, rec := mkFleet(t, false)
		w := doExtract(rt, singleBody)
		if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "fingerprint") {
			t.Fatalf("pinned reply = %d %s, want typed 503", w.Code, w.Body)
		}
		if got := rec.Counter("fleet.errors"); got != 1 {
			t.Fatalf("fleet.errors = %d, want 1", got)
		}
	})
	t.Run("mixed-allowed", func(t *testing.T) {
		rt, _ := mkFleet(t, true)
		w := doExtract(rt, singleBody)
		if w.Code != http.StatusOK {
			t.Fatalf("mixed reply = %d %s, want 200 via the other version", w.Code, w.Body)
		}
		if got := w.Header().Get(serve.BundleHeader); got != "fp-b" {
			t.Fatalf("bundle = %q, want fp-b", got)
		}
	})
}

// TestFingerprintMismatchMidRollout covers the rollout race: a backend whose
// probe advertised the old bundle answers with the new one. The response
// must be discarded and the request retried on a replica still serving the
// pinned version.
func TestFingerprintMismatchMidRollout(t *testing.T) {
	rolling := newStub(t, "fp-old", nil)
	rolling.respFP = "fp-new" // reloaded between our probe and the request
	stable := newStub(t, "fp-old", probeFail())
	rt, rec := newRouter(t, Config{
		FailThreshold: 3, RetryBackoff: time.Millisecond,
	}, rolling, stable)
	warmSkewed(t, rt)

	w := doExtract(rt, singleBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if got := w.Header().Get(serve.BundleHeader); got != "fp-old" {
		t.Fatalf("client saw bundle %q, want the pinned fp-old", got)
	}
	if got := rec.Counter("fleet.fingerprint_mismatch"); got != 1 {
		t.Fatalf("fleet.fingerprint_mismatch = %d, want 1", got)
	}
	// The mismatch taught the router the rolling backend's real version.
	if got := rt.Backends()[0].Fingerprint(); got != "fp-new" {
		t.Fatalf("rolling backend fingerprint = %q, want refreshed fp-new", got)
	}
}

// TestPinDrainedCompletedRollout covers the tail end of a rollout: every
// backend has already swapped to the new bundle but the router's probe cache
// still says old, so a fresh request pins to a version nothing serves. The
// request must not fail — each mismatch corrects one cache entry, and once
// the pinned version is provably gone from the fleet the fresh response is
// accepted instead of discarded.
func TestPinDrainedCompletedRollout(t *testing.T) {
	a := newStub(t, "fp-old", nil)
	b := newStub(t, "fp-old", probeFail())
	a.respFP, b.respFP = "fp-new", "fp-new" // both reloaded since the last probe
	rt, rec := newRouter(t, Config{
		FailThreshold: 3, RetryBackoff: time.Millisecond,
	}, a, b)
	warmSkewed(t, rt)

	w := doExtract(rt, singleBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if got := w.Header().Get(serve.BundleHeader); got != "fp-new" {
		t.Fatalf("client saw bundle %q, want the rolled-out fp-new", got)
	}
	// Attempt 1 mismatches and corrects one cache entry; the retry's
	// mismatch proves the old version drained and is accepted.
	if got := rec.Counter("fleet.fingerprint_mismatch"); got != 2 {
		t.Fatalf("fleet.fingerprint_mismatch = %d, want 2", got)
	}
	if got := rec.Counter("fleet.pin_drained"); got != 1 {
		t.Fatalf("fleet.pin_drained = %d, want 1", got)
	}
	if got := rec.Counter("fleet.errors"); got != 0 {
		t.Fatalf("fleet.errors = %d, want 0 (the request must survive the swap)", got)
	}
	for i, want := range []string{"fp-new", "fp-new"} {
		if got := rt.Backends()[i].Fingerprint(); got != want {
			t.Fatalf("backend %d fingerprint = %q, want %q", i, got, want)
		}
	}
}

// TestHedging arms tail-latency hedging against a slow-but-healthy replica:
// the hedge fires onto the fast one and its response wins.
func TestHedging(t *testing.T) {
	slow := newStub(t, "fp", nil)
	slow.delay = 400 * time.Millisecond
	fast := newStub(t, "fp", probeFail())
	rt, rec := newRouter(t, Config{
		FailThreshold: 3,
		HedgeAfter:    20 * time.Millisecond,
	}, slow, fast)
	warmSkewed(t, rt)

	start := time.Now()
	w := doExtract(rt, singleBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if el := time.Since(start); el >= 400*time.Millisecond {
		t.Fatalf("request took %v; hedge did not cut the tail", el)
	}
	if got := rec.Counter("fleet.hedges"); got != 1 {
		t.Fatalf("fleet.hedges = %d, want 1", got)
	}
	if got := rec.Counter("fleet.hedge_wins"); got != 1 {
		t.Fatalf("fleet.hedge_wins = %d, want 1", got)
	}
	if got := rec.Counter("fleet.retries"); got != 0 {
		t.Fatalf("fleet.retries = %d, want 0 (hedge, not retry)", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	rt, _ := newRouter(t, Config{RetryBackoff: 10 * time.Millisecond}, newStub(t, "fp", nil))
	for attempt := 1; attempt <= 8; attempt++ {
		base := 10 * time.Millisecond << (attempt - 1)
		if base > time.Second {
			base = time.Second
		}
		for i := 0; i < 50; i++ {
			d := rt.backoff(attempt)
			lo, hi := base/2, base+base/2
			if d < lo || d > hi {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
	}
}

func TestRouterEndpoints(t *testing.T) {
	s := newStub(t, "fp-ep", nil)
	rt, _ := newRouter(t, Config{}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	w := doGet(rt, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", w.Code)
	}
	var hz map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatalf("bad /healthz body: %v", err)
	}
	if hz["status"] != "ok" || hz["healthy"] != float64(1) {
		t.Fatalf("/healthz body = %v", hz)
	}

	w = doGet(rt, "/fleet")
	if w.Code != http.StatusOK {
		t.Fatalf("/fleet = %d, want 200", w.Code)
	}
	var fs FleetStatus
	if err := json.Unmarshal(w.Body.Bytes(), &fs); err != nil {
		t.Fatalf("bad /fleet body: %v", err)
	}
	if len(fs.Backends) != 1 || fs.Backends[0].State != "healthy" ||
		fs.Backends[0].Fingerprint != "fp-ep" || fs.Backends[0].Breaker != "closed" {
		t.Fatalf("/fleet body = %+v", fs)
	}

	// Method and body validation at the router's edge.
	if w := doGet(rt, "/extract"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /extract = %d, want 405", w.Code)
	}
	if w := doExtract(rt, "{not json"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body = %d, want 400", w.Code)
	}
}

// TestOversizedBodyAtRouter asserts the router rejects oversized bodies
// itself instead of shipping them to a backend.
func TestOversizedBodyAtRouter(t *testing.T) {
	s := newStub(t, "fp", faultinject.New()) // empty injector = pure call counter
	rt, _ := newRouter(t, Config{}, s)
	big := fmt.Sprintf(`{"id":"p1","html":%q}`, strings.Repeat("x", serve.MaxBodyBytes+1))
	req := httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader(big))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", w.Code)
	}
	if got := s.inj.Calls(faultinject.StageHTTPExtract); got != 0 {
		t.Fatalf("backend saw %d calls, want 0", got)
	}
}
