// Package fleet is the coordination layer that turns N paeserve replicas
// into one fault-tolerant extraction service. A Router fans /extract
// requests out to health-checked backends with bounded retries against
// *different* replicas, optional tail-latency hedging for single-page
// requests, per-backend circuit breakers, fingerprint-pinned routing (one
// logical request never mixes model versions, even mid-rollout), and a
// fleet-wide load-shedding policy that degrades gracefully — batch requests
// shed first, then everything, always as typed 503s with Retry-After.
//
// Everything is pure stdlib. The package is deliberately backend-agnostic:
// a backend is anything that speaks the internal/serve contract — /extract
// with the X-Pae-Bundle header, a readiness-aware /healthz that reports the
// bundle fingerprint and flips to 503 {"status":"draining"} before
// shutdown.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Typed routing failures, surfaced as JSON 503s and matchable in tests.
var (
	// ErrNoBackends: no backend is routable (all down, tried, or circuit-open).
	ErrNoBackends = errors.New("fleet: no routable backend")
	// ErrPinned: backends exist, but none advertises the bundle fingerprint
	// this request is pinned to — refusing to mix model versions mid-request.
	ErrPinned = errors.New("fleet: no backend with the pinned bundle fingerprint")
	// ErrWorkload: backends exist and are routable, but none hosts the
	// workload the request declared — a title request against an all
	// detail-page fleet, or vice versa.
	ErrWorkload = errors.New("fleet: no backend hosts the requested workload")
)

// Config configures a Router. Backends is required; every other field has a
// production-shaped default.
type Config struct {
	// Backends are the replicas' base URLs, e.g. "http://127.0.0.1:8081".
	Backends []string

	// ProbeInterval is the active health-check period per backend
	// (default 1s); ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold consecutive probe failures demote a backend one rung
	// (healthy → suspect → down); RiseThreshold consecutive successes
	// promote it one rung. Both default to 2.
	FailThreshold int
	RiseThreshold int

	// MaxAttempts bounds the total tries (first attempt + retries + hedges)
	// for one logical request (default 3). Each attempt goes to a backend
	// the request has not tried yet.
	MaxAttempts int
	// AttemptTimeout bounds each attempt (default 10s).
	AttemptTimeout time.Duration
	// RetryBackoff is the base of the jittered exponential backoff between
	// retries: attempt n waits RetryBackoff·2ⁿ⁻¹ scaled by a uniform
	// [0.5,1.5) jitter, capped at 1s (default 25ms).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, arms tail-latency hedging for single-page
	// requests: if the first attempt has not answered after this long, a
	// second attempt starts on another backend and the first response wins
	// (default off).
	HedgeAfter time.Duration

	// MaxInflight bounds requests in flight through the router; past it,
	// requests are shed with 503 + Retry-After (default 0 = unlimited).
	// BatchShedFraction sheds batch requests first: once in-flight load
	// exceeds this fraction of MaxInflight, batches get 503 while
	// single-page requests still pass (default 0.75).
	MaxInflight       int
	BatchShedFraction float64

	// BreakerThreshold consecutive request failures open a backend's
	// circuit for BreakerCooldown, after which one trial request may pass
	// (defaults 5, 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// AllowMixedFingerprints disables fingerprint pinning. By default a
	// logical request is pinned to the bundle fingerprint of its first
	// backend: retries and hedges only go to replicas advertising the same
	// fingerprint, and a response carrying a different one is discarded and
	// retried — a client never sees two model versions stitched together.
	AllowMixedFingerprints bool

	// Transport overrides the HTTP transport (tests inject faults here);
	// nil uses a dedicated transport with per-backend keep-alive pools.
	Transport http.RoundTripper
	// Obs receives the fleet counters (fleet.*), probe gauges, the
	// fleet.request.seconds latency histogram and the per-route/per-backend
	// rolling windows behind /metrics and GET /fleet; nil records nothing.
	Obs *obs.Recorder
	// Traces, when non-nil, captures per-request traces — retries, hedges,
	// breaker opens, sheds — served at GET /debug/traces. Nil disables
	// capture; the X-Pae-Trace ID still round-trips on every response.
	Traces *obs.TraceLog
	// Logger receives state transitions and breaker events; nil discards.
	Logger *slog.Logger
	// Seed fixes the backoff-jitter RNG for deterministic tests (0 seeds
	// from the clock).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.RiseThreshold <= 0 {
		c.RiseThreshold = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.BatchShedFraction <= 0 || c.BatchShedFraction > 1 {
		c.BatchShedFraction = 0.75
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Router fans extraction requests out over a fleet of backends. Construct
// with New, call Start to begin health probing, Handler for the HTTP
// surface, Close to stop probing.
type Router struct {
	cfg      Config
	rec      *obs.Recorder
	traces   *obs.TraceLog
	log      *slog.Logger
	client   *http.Client
	backends []*Backend
	inflight atomic.Int64
	rr       atomic.Uint64 // round-robin tie-breaker

	// Per-route rolling latency windows: the live p50/p99/p999 surfaced by
	// GET /fleet and the /metrics summaries. Nil (no Recorder) is inert.
	winSingle *obs.Window
	winBatch  *obs.Window

	randMu sync.Mutex
	rand   *rand.Rand

	stop    context.CancelFunc
	probeWG sync.WaitGroup
}

// New builds a Router over the configured backends. Backends start in the
// Suspect state (routable, not preferred) until the first probes land; call
// ProbeAll for a synchronous warm-up round.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	tr := cfg.Transport
	if tr == nil {
		tr = &http.Transport{MaxIdleConnsPerHost: 64, IdleConnTimeout: 90 * time.Second}
	}
	rt := &Router{
		cfg:    cfg,
		rec:    cfg.Obs,
		traces: cfg.Traces,
		log:    cfg.Logger,
		client: &http.Client{Transport: tr},
		rand:   rand.New(rand.NewSource(seed)),
	}
	// Router latencies are ms-scale: override the train-time default buckets
	// before the first observation lands.
	rt.rec.SetBuckets("fleet.request.seconds", obs.LatencyBuckets())
	rt.winSingle = rt.rec.Window(`fleet.request.seconds.window{route="single"}`, obs.WindowOptions{})
	rt.winBatch = rt.rec.Window(`fleet.request.seconds.window{route="batch"}`, obs.WindowOptions{})
	for _, u := range cfg.Backends {
		b := &Backend{url: u}
		b.br.threshold = cfg.BreakerThreshold
		b.br.cooldown = cfg.BreakerCooldown
		b.win = rt.rec.Window(`fleet.backend.seconds.window{backend="`+u+`"}`, obs.WindowOptions{})
		rt.backends = append(rt.backends, b)
	}
	return rt, nil
}

// Backends returns the fleet members, in configuration order.
func (rt *Router) Backends() []*Backend { return rt.backends }

// Start launches one probe loop per backend. Each loop probes immediately,
// then every ProbeInterval.
func (rt *Router) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	rt.stop = cancel
	for _, b := range rt.backends {
		rt.probeWG.Add(1)
		go func(b *Backend) {
			defer rt.probeWG.Done()
			rt.probe(ctx, b)
			t := time.NewTicker(rt.cfg.ProbeInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rt.probe(ctx, b)
				}
			}
		}(b)
	}
}

// Close stops the probe loops and waits for them.
func (rt *Router) Close() {
	if rt.stop != nil {
		rt.stop()
		rt.probeWG.Wait()
	}
	rt.client.CloseIdleConnections()
}

// ProbeAll runs one synchronous probe round over every backend — a warm-up
// so the fleet starts with real states instead of waiting a probe interval.
func (rt *Router) ProbeAll(ctx context.Context) {
	for _, b := range rt.backends {
		rt.probe(ctx, b)
	}
}

// probe runs one active health check against a backend and folds the result
// into its state machine.
func (rt *Router) probe(ctx context.Context, b *Backend) {
	rt.rec.Add("fleet.probes", 1)
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return
	}
	var ok, draining bool
	var fp, errStr string
	var wl workload.Kind
	resp, err := rt.client.Do(req)
	if err != nil {
		errStr = err.Error()
	} else {
		var h serve.Health
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if rerr == nil && json.Unmarshal(body, &h) == nil {
			fp = h.Bundle
			wl = h.Workload
			draining = h.Status == "draining"
		}
		ok = resp.StatusCode == http.StatusOK && !draining
		if !ok {
			errStr = fmt.Sprintf("healthz status %d %s", resp.StatusCode, h.Status)
		}
	}
	if !ok {
		rt.rec.Add("fleet.probe_failures", 1)
	}
	old, now := b.onProbe(ok, draining, fp, wl, errStr, rt.cfg.FailThreshold, rt.cfg.RiseThreshold)
	if old != now {
		rt.rec.Add("fleet.state_changes", 1)
		rt.log.Info("backend state change", "backend", b.url, "from", old.String(), "to", now.String(), "err", errStr)
	}
	healthy := 0
	for _, ob := range rt.backends {
		if ob.State() == Healthy {
			healthy++
		}
	}
	rt.rec.Set("fleet.backends_healthy", float64(healthy))
}

// Handler returns the router's HTTP surface: POST /extract (the fleet
// entry point), GET /healthz (router readiness: 200 while ≥1 backend is
// routable), GET /fleet (per-backend status for operators and tests),
// GET /metrics (Prometheus text exposition) and GET /debug/traces (slowest
// and errored request exemplars).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/extract", rt.handleExtract)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/fleet", rt.handleFleet)
	mux.Handle("/metrics", serve.MetricsHandler(rt.rec))
	mux.Handle("/debug/traces", serve.TracesHandler(rt.traces))
	return mux
}

// shedResponse is the typed overload reply; Shed distinguishes load
// shedding from other 503s so load generators can count it, and Trace
// carries the request's X-Pae-Trace ID so even a shed reply is traceable.
type shedResponse struct {
	Error      string `json:"error"`
	Shed       bool   `json:"shed"`
	RetryAfter int    `json:"retry_after_seconds"`
	Trace      string `json:"trace,omitempty"`
}

// seal finishes a request's trace, records it, folds the latency into the
// per-route histogram and rolling window (route "" skips them — the request
// never parsed far enough to have one), and emits the access log line.
func (rt *Router) seal(tr *obs.Trace, tid, route string, status int, outcome string, err error, start time.Time) {
	dur := time.Since(start)
	tr.Finish(outcome, status, err)
	rt.traces.Record(tr)
	if route != "" {
		rt.rec.Observe("fleet.request.seconds", dur.Seconds())
		if route == "batch" {
			rt.winBatch.Observe(dur.Seconds())
		} else {
			rt.winSingle.Observe(dur.Seconds())
		}
	}
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	rt.log.Info("request", "trace", tid, "route", route, "status", status, "dur", dur, "err", errMsg)
}

func (rt *Router) shed(w http.ResponseWriter, tr *obs.Trace, tid, route, scope string, inflight int64, start time.Time) {
	rt.rec.Add("fleet.shed_"+scope, 1)
	tr.Event("shed", "scope", scope, "inflight", strconv.FormatInt(inflight, 10))
	w.Header().Set("Retry-After", "1")
	msg := fmt.Sprintf("overloaded: %d requests in flight, shedding %s requests", inflight, scope)
	writeJSON(w, http.StatusServiceUnavailable, shedResponse{
		Error:      msg,
		Shed:       true,
		RetryAfter: 1,
		Trace:      tid,
	})
	rt.seal(tr, tid, route, http.StatusServiceUnavailable, obs.TraceShed, errors.New(msg), start)
}

func (rt *Router) handleExtract(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Adopt the client's trace ID or mint one, and echo it before any branch:
	// shed and timeout 503s must round-trip the ID like any other response.
	tid := r.Header.Get(obs.TraceHeader)
	if tid == "" {
		tid = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, tid)
	var tr *obs.Trace
	if rt.traces != nil {
		tr = obs.NewTrace(tid)
	}
	badReq := func(status int, msg string) {
		writeJSON(w, status, serve.ErrorResponse{Error: msg, Trace: tid})
		rt.seal(tr, tid, "", status, obs.TraceError, errors.New(msg), start)
	}

	if r.Method != http.MethodPost {
		badReq(http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			badReq(http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		badReq(http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	// Classify single vs batch without validating deeply — the backend owns
	// request validation; the router only needs the shape for shedding and
	// hedging policy.
	var req serve.Request
	if err := json.Unmarshal(body, &req); err != nil {
		badReq(http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	single := len(req.Pages) == 0
	route := "single"
	if !single {
		route = "batch"
	}
	// An unknown workload is the client's mistake, not a fleet condition:
	// reject it here as the backend would, instead of reporting "no backend
	// hosts it" for a workload that cannot exist.
	if req.Workload != "" && !req.Workload.Valid() {
		badReq(http.StatusBadRequest, fmt.Sprintf("unknown workload %q", string(req.Workload)))
		return
	}

	// Load shedding, before any backend work: batches go first, then
	// everything. The backends' own -max-inflight queues requests; the
	// router's job under overload is to say no quickly instead of queueing
	// without bound.
	cur := rt.inflight.Add(1)
	defer rt.inflight.Add(-1)
	if rt.cfg.MaxInflight > 0 {
		if cur > int64(rt.cfg.MaxInflight) {
			rt.shed(w, tr, tid, route, "full", cur, start)
			return
		}
		if !single && float64(cur) > rt.cfg.BatchShedFraction*float64(rt.cfg.MaxInflight) {
			rt.shed(w, tr, tid, route, "batch", cur, start)
			return
		}
	}

	rt.rec.Add("fleet.requests", 1)
	rt.forward(w, r, body, single, req.Workload, tr, tid, route, start)
}

// attemptOut is one attempt's outcome: a transport error, or a response
// with its body fully read.
type attemptOut struct {
	b      *Backend
	status int
	header http.Header
	body   []byte
	err    error
}

// retryable reports whether the outcome should burn a retry: transport
// errors (connection refused/reset, timeouts, slow-loris read aborts) and
// backend 5xx. 2xx and 4xx are terminal.
func (o attemptOut) retryable() bool { return o.err != nil || o.status >= 500 }

// forward runs the attempt loop for one logical request: pick a backend,
// try it, retry (with jittered backoff) or hedge onto *different* backends
// as needed, and stream the winning response to the client.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, single bool, wl workload.Kind, tr *obs.Trace, tid, route string, start time.Time) {
	ctx := r.Context()
	tried := map[*Backend]bool{}
	var pin string // bundle fingerprint this request is pinned to
	results := make(chan attemptOut, rt.cfg.MaxAttempts+1)
	attempts, inFlight := 0, 0
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// launch starts one attempt on a not-yet-tried backend; a typed error
	// means no such backend exists right now.
	launch := func() (*Backend, error) {
		b, err := rt.pick(tried, pin, wl)
		if err != nil {
			return nil, err
		}
		if pin == "" && !rt.cfg.AllowMixedFingerprints {
			pin = b.Fingerprint() // "" if never probed: first response sets it
		}
		tried[b] = true
		attempts++
		inFlight++
		tr.Event("attempt", "n", strconv.Itoa(attempts), "backend", b.URL())
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() { results <- rt.attempt(actx, b, body, tid, tr) }()
		return b, nil
	}

	finish := func(out attemptOut) {
		h := w.Header()
		for _, k := range []string{"Content-Type", serve.BundleHeader, serve.WorkloadHeader} {
			if v := out.header.Get(k); v != "" {
				h.Set(k, v)
			}
		}
		w.WriteHeader(out.status)
		_, _ = w.Write(out.body)
		outcome := obs.TraceOK
		var err error
		if out.status < 400 {
			rt.rec.Add("fleet.success", 1)
		} else {
			rt.rec.Add("fleet.errors", 1)
			outcome = obs.TraceError
			err = fmt.Errorf("backend status %d", out.status)
		}
		rt.seal(tr, tid, route, out.status, outcome, err, start)
	}

	fail := func(status int, err error) {
		rt.rec.Add("fleet.errors", 1)
		er := serve.ErrorResponse{Error: err.Error(), Trace: tid}
		if status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
			er.RetryAfterSeconds = 1
		}
		writeJSON(w, status, er)
		rt.seal(tr, tid, route, status, obs.TraceError, err, start)
	}

	if _, err := launch(); err != nil {
		tr.Event("no-backend", "err", err.Error())
		fail(http.StatusServiceUnavailable, err)
		return
	}
	var hedgeC <-chan time.Time
	if single && rt.cfg.HedgeAfter > 0 && rt.cfg.MaxAttempts > 1 {
		hedgeC = time.After(rt.cfg.HedgeAfter)
	}
	var retryC <-chan time.Time
	var last attemptOut
	var hedgeB *Backend
	for {
		select {
		case out := <-results:
			inFlight--
			if !out.retryable() {
				if !rt.pinOK(out, pin) {
					rt.rec.Add("fleet.fingerprint_mismatch", 1)
					if rt.pinDrained(pin) {
						// The pinned bundle is gone from every routable
						// backend — a rollout completed under this request.
						// There is no version left to stay consistent with,
						// so the fresh response is the answer, not an error.
						rt.rec.Add("fleet.pin_drained", 1)
						tr.Event("pin-drained", "backend", out.b.URL(), "pin", pin)
						finish(out)
						return
					}
					// A backend answered with a different bundle than this
					// request is pinned to (rollout race): never mix model
					// versions — discard and retry against the pinned set.
					tr.Event("fingerprint-mismatch", "backend", out.b.URL(), "pin", pin)
					out.err = fmt.Errorf("%w: backend %s answered with a different bundle", ErrPinned, out.b.URL())
				} else {
					if hedgeB != nil && out.b == hedgeB {
						rt.rec.Add("fleet.hedge_wins", 1)
						tr.Event("hedge-won", "backend", out.b.URL())
					}
					if pin == "" && out.b != nil {
						// Unprobed fleet: adopt the first fingerprint seen.
						out.b.setFingerprint(out.header.Get(serve.BundleHeader))
					}
					finish(out)
					return
				}
			} else if out.err != nil {
				tr.Event("attempt-failed", "backend", out.b.URL(), "err", out.err.Error())
			} else {
				tr.Event("attempt-failed", "backend", out.b.URL(), "status", strconv.Itoa(out.status))
			}
			last = out
			if attempts < rt.cfg.MaxAttempts {
				d := rt.backoff(attempts)
				tr.Event("retry", "after", d.String())
				retryC = time.After(d)
			} else if inFlight == 0 {
				fail(rt.failStatus(last), lastError(last))
				return
			}
		case <-retryC:
			retryC = nil
			if _, err := launch(); err != nil {
				tr.Event("no-backend", "err", err.Error())
				if inFlight == 0 {
					fail(http.StatusServiceUnavailable, err)
					return
				}
			} else {
				rt.rec.Add("fleet.retries", 1)
			}
		case <-hedgeC:
			hedgeC = nil
			if attempts < rt.cfg.MaxAttempts {
				if b, err := launch(); err == nil {
					hedgeB = b
					rt.rec.Add("fleet.hedges", 1)
					tr.Event("hedge", "backend", b.URL())
				}
			}
		case <-ctx.Done():
			rt.rec.Add("fleet.client_canceled", 1)
			tr.Event("client-canceled")
			writeJSON(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: "client canceled", Trace: tid})
			rt.seal(tr, tid, route, http.StatusServiceUnavailable, obs.TraceError, errors.New("client canceled"), start)
			return
		}
	}
}

// pinOK verifies a successful response carries the pinned fingerprint (when
// pinning is armed and the backend sent the header).
func (rt *Router) pinOK(out attemptOut, pin string) bool {
	if pin == "" || rt.cfg.AllowMixedFingerprints || out.status >= 400 {
		return true
	}
	got := out.header.Get(serve.BundleHeader)
	if got != "" && got != pin {
		// Remember the fresher fingerprint so future requests pin correctly.
		out.b.setFingerprint(got)
		return false
	}
	return true
}

// pinDrained reports whether no routable backend still serves the pinned
// fingerprint. It runs after pinOK has already corrected the answering
// backend's cached fingerprint, so a true result means the pinned version has
// genuinely left the fleet (every mismatch teaches the router one backend's
// real version, so a fully-rolled fleet is recognized within one retry per
// stale cache entry). Unprobed backends ("" fingerprint) count as possibly
// serving the pin, matching pick's wildcard treatment.
func (rt *Router) pinDrained(pin string) bool {
	if pin == "" {
		return false
	}
	for _, b := range rt.backends {
		if b.State() == Down {
			continue
		}
		if fp := b.Fingerprint(); fp == "" || fp == pin {
			return false
		}
	}
	return true
}

// failStatus maps an exhausted attempt budget to the client-facing status:
// pass a backend's own status through, transport errors become 502.
func (rt *Router) failStatus(last attemptOut) int {
	if last.err != nil {
		return http.StatusBadGateway
	}
	return last.status
}

func lastError(last attemptOut) error {
	if last.err != nil {
		return fmt.Errorf("all attempts failed; last: %w", last.err)
	}
	return fmt.Errorf("all attempts failed; last: backend status %d: %s",
		last.status, bytes.TrimSpace(last.body))
}

// attempt runs one try against one backend and fully reads the response.
// The trace ID rides the X-Pae-Trace header so every retry and hedge of a
// logical request shows up under one ID in the backend's own trace log.
func (rt *Router) attempt(ctx context.Context, b *Backend, body []byte, tid string, tr *obs.Trace) attemptOut {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	began := time.Now()
	defer func() { b.win.Observe(time.Since(began).Seconds()) }()
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, b.url+"/extract", bytes.NewReader(body))
	if err != nil {
		return attemptOut{b: b, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, tid)
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.noteFailure(b, tr)
		return attemptOut{b: b, err: err}
	}
	defer resp.Body.Close()
	// Read the whole body under the attempt deadline: a slow-loris backend
	// fails here, not in the client's lap.
	rbody, err := io.ReadAll(io.LimitReader(resp.Body, serve.MaxBodyBytes*4))
	if err != nil {
		rt.noteFailure(b, tr)
		return attemptOut{b: b, err: fmt.Errorf("read response: %w", err)}
	}
	if resp.StatusCode >= 500 {
		rt.noteFailure(b, tr)
	} else {
		b.br.success()
	}
	// A live response is fresher than the last probe: learn the workload now
	// so a mid-rollout reload (detail-page → title) redirects the very next
	// pick instead of waiting out a probe interval.
	b.setWorkload(workload.Kind(resp.Header.Get(serve.WorkloadHeader)))
	return attemptOut{b: b, status: resp.StatusCode, header: resp.Header, body: rbody}
}

func (rt *Router) noteFailure(b *Backend, tr *obs.Trace) {
	if b.br.failure(time.Now()) {
		rt.rec.Add("fleet.breaker_opens", 1)
		tr.Event("breaker-open", "backend", b.url)
		rt.log.Warn("circuit breaker opened", "backend", b.url)
	}
}

// pick selects the attempt's backend: the least-loaded not-yet-tried
// backend hosting the requested workload, preferring healthy over suspect,
// breaker-closed over a half-open trial, and — when pinning is armed —
// replicas advertising the pinned fingerprint. Down backends and open
// breakers are never picked.
func (rt *Router) pick(tried map[*Backend]bool, pin string, wl workload.Kind) (*Backend, error) {
	now := time.Now()
	pinBlocked, wlBlocked := false, false
	// tier 0: healthy+closed, 1: suspect+closed, 2: healthy+trial, 3: suspect+trial
	var tiers [4][]*Backend
	for _, b := range rt.backends {
		if tried[b] {
			continue
		}
		st := b.State()
		if st == Down {
			continue
		}
		// The workload filter runs before the fingerprint pin: fingerprints
		// only distinguish versions *within* a workload, so a backend of the
		// wrong shape is out of the candidate set entirely. A backend whose
		// workload is still unknown ("" — unprobed, or a pre-workload serve
		// build) stays routable as a wildcard, exactly as unprobed
		// fingerprints pin lazily; if it answers the wrong shape the backend
		// itself rejects with a 400 workload mismatch.
		if wl != "" {
			if bw := b.Workload(); bw != "" && bw.WithDefault() != wl.WithDefault() {
				wlBlocked = true
				continue
			}
		}
		if pin != "" {
			if fp := b.Fingerprint(); fp != "" && fp != pin {
				pinBlocked = true
				continue
			}
		}
		switch brState := b.br.state(now); {
		case brState == breakerClosed && st == Healthy:
			tiers[0] = append(tiers[0], b)
		case brState == breakerClosed:
			tiers[1] = append(tiers[1], b)
		case brState == breakerHalfOpen && st == Healthy:
			tiers[2] = append(tiers[2], b)
		case brState == breakerHalfOpen:
			tiers[3] = append(tiers[3], b)
		}
	}
	for ti, tier := range tiers {
		// Least in-flight first, round-robin among ties.
		offset := int(rt.rr.Add(1))
		var best *Backend
		var bestLoad int64
		for i := range tier {
			b := tier[(i+offset)%len(tier)]
			load := b.Inflight()
			if best == nil || load < bestLoad {
				best, bestLoad = b, load
			}
		}
		if best == nil {
			continue
		}
		if ti >= 2 && !best.br.tryTrial(now) {
			// Lost the half-open trial slot to a concurrent request; treat
			// the backend as still open.
			continue
		}
		return best, nil
	}
	// Precedence: a pin block means the right workload exists but the pinned
	// version is gone (retry later may succeed); a workload block means the
	// fleet simply does not host the shape.
	if pinBlocked {
		return nil, ErrPinned
	}
	if wlBlocked {
		return nil, ErrWorkload
	}
	return nil, ErrNoBackends
}

// backoff returns the jittered exponential delay before retry n (1-based
// over completed attempts): RetryBackoff·2ⁿ⁻¹ scaled by uniform [0.5,1.5),
// capped at 1s.
func (rt *Router) backoff(attempt int) time.Duration {
	d := rt.cfg.RetryBackoff << (attempt - 1)
	if d > time.Second {
		d = time.Second
	}
	rt.randMu.Lock()
	j := 0.5 + rt.rand.Float64()
	rt.randMu.Unlock()
	return time.Duration(float64(d) * j)
}

// handleHealthz reports router readiness: 200 while at least one backend is
// routable (not Down, breaker not open), 503 otherwise — so a router can
// itself sit behind a health-checked load balancer.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	routable, healthy := 0, 0
	for _, b := range rt.backends {
		st := b.State()
		if st == Healthy {
			healthy++
		}
		if st != Down && b.br.state(now) != breakerOpen {
			routable++
		}
	}
	status := http.StatusOK
	state := "ok"
	if routable == 0 {
		status = http.StatusServiceUnavailable
		state = "unroutable"
	}
	writeJSON(w, status, map[string]any{
		"status":   state,
		"backends": len(rt.backends),
		"healthy":  healthy,
		"routable": routable,
		"inflight": rt.inflight.Load(),
	})
}

// FleetStatus is the GET /fleet reply. Latency maps route ("single",
// "batch") to the live rolling-window quantiles — the same numbers /metrics
// exposes as summaries, in scrapeable JSON for operators and the
// serve-fleet experiment.
type FleetStatus struct {
	Backends []BackendStatus               `json:"backends"`
	Inflight int64                         `json:"inflight"`
	Latency  map[string]obs.WindowSnapshot `json:"latency,omitempty"`
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	st := FleetStatus{Inflight: rt.inflight.Load()}
	if rt.rec != nil {
		st.Latency = map[string]obs.WindowSnapshot{
			"single": rt.winSingle.Snapshot(),
			"batch":  rt.winBatch.Snapshot(),
		}
	}
	for _, b := range rt.backends {
		st.Backends = append(st.Backends, b.status(now))
	}
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// RetryAfter parses a shed response's Retry-After header (for load
// generators); returns 0 when absent or malformed.
func RetryAfter(h http.Header) time.Duration {
	s, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || s < 0 {
		return 0
	}
	return time.Duration(s) * time.Second
}
