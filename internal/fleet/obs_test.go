package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// doExtractTraced is doExtract with a client-chosen X-Pae-Trace header.
func doExtractTraced(rt *Router, body, tid string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/extract", strings.NewReader(body))
	req.Header.Set(obs.TraceHeader, tid)
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w
}

// routerTraces fetches and decodes GET /debug/traces.
func routerTraces(t *testing.T, rt *Router) obs.TraceLogSnapshot {
	t.Helper()
	w := doGet(rt, "/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", w.Code)
	}
	var snap obs.TraceLogSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad /debug/traces body: %v", err)
	}
	return snap
}

// TestTraceSpansRetryAndHedge is the acceptance path for request-scoped
// tracing: one logical request whose first attempt 500s (burning a retry)
// and whose second attempt is slow enough for the hedge to fire and win
// must yield exactly ONE trace at /debug/traces — carrying the retry, the
// hedge and the hedge-won events under the same ID the client got back.
func TestTraceSpansRetryAndHedge(t *testing.T) {
	bad := newStub(t, "fp", faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPExtract, Call: 1, Until: faultinject.Forever, Kind: faultinject.Error,
	}))
	slow := newStub(t, "fp", probeFail())
	slow.delay = 400 * time.Millisecond
	fast := newStub(t, "fp", probeFail())
	rt, rec := newRouter(t, Config{
		FailThreshold: 3,
		RetryBackoff:  time.Millisecond,
		HedgeAfter:    20 * time.Millisecond,
		Traces:        obs.NewTraceLog(8),
	}, bad, slow, fast)
	warmSkewed(t, rt)

	// Nudge the retry's least-loaded tie-break toward the slow replica: with
	// a phantom in-flight request on fast, the retry deterministically picks
	// slow, and the hedge — slow already tried — must land on fast.
	rt.Backends()[2].inflight.Add(1)
	defer rt.Backends()[2].inflight.Add(-1)

	const tid = "0bad0bad0bad0bad"
	w := doExtractTraced(rt, singleBody, tid)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body)
	}
	if got := w.Header().Get(obs.TraceHeader); got != tid {
		t.Fatalf("%s = %q, want the client's ID back", obs.TraceHeader, got)
	}
	if got := rec.Counter("fleet.retries"); got != 1 {
		t.Fatalf("fleet.retries = %d, want 1", got)
	}
	if got := rec.Counter("fleet.hedge_wins"); got != 1 {
		t.Fatalf("fleet.hedge_wins = %d, want 1", got)
	}

	snap := routerTraces(t, rt)
	var traced []obs.TraceSnapshot
	for _, tr := range snap.Slowest {
		if tr.ID == tid {
			traced = append(traced, tr)
		}
	}
	if len(traced) != 1 {
		t.Fatalf("want exactly one trace with id %s, got %d (%+v)", tid, len(traced), snap)
	}
	tr := traced[0]
	if tr.Status != obs.TraceOK || tr.HTTPStatus != http.StatusOK {
		t.Fatalf("trace outcome = status %q http %d, want ok/200", tr.Status, tr.HTTPStatus)
	}
	count := map[string]int{}
	for _, e := range tr.Events {
		count[e.Msg]++
	}
	if count["attempt"] != 3 {
		t.Fatalf("attempt events = %d, want 3 (first + retry + hedge): %+v", count["attempt"], tr.Events)
	}
	for _, want := range []string{"attempt-failed", "retry", "hedge", "hedge-won"} {
		if count[want] == 0 {
			t.Fatalf("trace missing %q event: %+v", want, tr.Events)
		}
	}
	// The hedge must name the backend that won.
	for _, e := range tr.Events {
		if e.Msg == "hedge-won" && e.Attrs["backend"] != fast.srv.URL {
			t.Fatalf("hedge-won backend = %q, want %q", e.Attrs["backend"], fast.srv.URL)
		}
	}
}

// TestShed503Contract pins the load-shedding reply shape: a typed JSON body
// with error, shed, retry_after_seconds and the trace ID, plus the
// Retry-After header — and the shed trace filed under the error exemplars.
func TestShed503Contract(t *testing.T) {
	s := newStub(t, "fp", nil)
	rt, _ := newRouter(t, Config{
		MaxInflight: 1, BatchShedFraction: 0.5,
		Traces: obs.NewTraceLog(8),
	}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	// At MaxInflight 1 a lone batch request already exceeds the batch-shed
	// watermark: deterministic shedding with no concurrency.
	w := doExtractTraced(rt, batchBody, "feed5eedfeed5eed")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("batch = %d, want 503", w.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("shed body not JSON: %q", w.Body)
	}
	// The wire contract, field by field — renames break clients.
	if _, ok := body["error"].(string); !ok {
		t.Fatalf(`shed body missing "error": %s`, w.Body)
	}
	if body["shed"] != true {
		t.Fatalf(`shed body "shed" = %v, want true`, body["shed"])
	}
	if body["retry_after_seconds"] != float64(1) {
		t.Fatalf(`shed body "retry_after_seconds" = %v, want 1`, body["retry_after_seconds"])
	}
	if body["trace"] != "feed5eedfeed5eed" {
		t.Fatalf(`shed body "trace" = %v, want the request's ID`, body["trace"])
	}
	if got := RetryAfter(w.Result().Header); got != time.Second {
		t.Fatalf("Retry-After = %v, want 1s", got)
	}
	if got := w.Header().Get(obs.TraceHeader); got != "feed5eedfeed5eed" {
		t.Fatalf("shed 503 did not echo the trace header: %q", got)
	}

	snap := routerTraces(t, rt)
	if len(snap.Errors) != 1 || snap.Errors[0].ID != "feed5eedfeed5eed" || snap.Errors[0].Status != obs.TraceShed {
		t.Fatalf("shed trace not in error exemplars: %+v", snap)
	}
	if len(snap.Errors[0].Events) == 0 || snap.Errors[0].Events[0].Msg != "shed" {
		t.Fatalf("shed trace events = %+v, want a shed event", snap.Errors[0].Events)
	}
}

// TestExhausted503Contract pins the no-routable-backend reply: error text,
// trace ID and retry_after_seconds in the JSON body.
func TestExhausted503Contract(t *testing.T) {
	rec := obs.New(obs.Options{NoRuntimeStats: true})
	rt, err := New(Config{
		Backends:     []string{"http://127.0.0.1:1"}, // nothing listens here
		RetryBackoff: time.Millisecond,
		Obs:          rec,
		Traces:       obs.NewTraceLog(8),
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	w := doExtract(rt, singleBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", w.Code, w.Body)
	}
	tid := w.Header().Get(obs.TraceHeader)
	if len(tid) != 16 {
		t.Fatalf("minted trace ID = %q, want 16 hex chars", tid)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatalf("503 body not JSON: %q", w.Body)
	}
	if !strings.Contains(er.Error, "no routable backend") {
		t.Fatalf("503 error = %q, want the typed no-backend error", er.Error)
	}
	if er.Trace != tid || er.RetryAfterSeconds != 1 {
		t.Fatalf("503 body = %+v, want trace %q and retry_after_seconds 1", er, tid)
	}

	snap := routerTraces(t, rt)
	if len(snap.Errors) != 1 || snap.Errors[0].ID != tid {
		t.Fatalf("exhausted trace not captured: %+v", snap)
	}
	events := map[string]bool{}
	for _, e := range snap.Errors[0].Events {
		events[e.Msg] = true
	}
	if !events["attempt-failed"] || !events["no-backend"] {
		t.Fatalf("exhausted trace events = %+v, want attempt-failed and no-backend", snap.Errors[0].Events)
	}
}

// TestFleetStatusJSON pins the GET /fleet operator surface: backend states,
// fingerprints and live latency quantiles for both the fleet and each
// backend, populated after real traffic.
func TestFleetStatusJSON(t *testing.T) {
	s := newStub(t, "fp-live", nil)
	rt, _ := newRouter(t, Config{}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())
	for i := 0; i < 3; i++ {
		if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
			t.Fatalf("extract %d = %d", i, w.Code)
		}
	}

	w := doGet(rt, "/fleet")
	if w.Code != http.StatusOK {
		t.Fatalf("/fleet = %d", w.Code)
	}
	var fs FleetStatus
	if err := json.Unmarshal(w.Body.Bytes(), &fs); err != nil {
		t.Fatalf("bad /fleet body: %v", err)
	}
	if len(fs.Backends) != 1 || fs.Backends[0].State != "healthy" || fs.Backends[0].Fingerprint != "fp-live" {
		t.Fatalf("/fleet backends = %+v", fs.Backends)
	}
	single, ok := fs.Latency["single"]
	if !ok {
		t.Fatalf("/fleet latency missing the single route: %+v", fs.Latency)
	}
	if single.Count != 3 || single.P50 <= 0 || single.P99 < single.P50 {
		t.Fatalf("single-route window = %+v, want 3 observations with ordered quantiles", single)
	}
	if batch, ok := fs.Latency["batch"]; !ok || batch.Count != 0 {
		t.Fatalf("batch-route window = %+v (present %v), want an empty window", batch, ok)
	}
	if bl := fs.Backends[0].Latency; bl == nil || bl.Count != 3 {
		t.Fatalf("backend window = %+v, want 3 observations", fs.Backends[0].Latency)
	}
}

// TestMetricsUnderConcurrentScrape hammers /extract while scraping /metrics
// and /fleet from parallel goroutines — the exposition must stay consistent
// (this test exists to run under -race) and the final scrape must show the
// request counters and window summaries.
func TestMetricsUnderConcurrentScrape(t *testing.T) {
	s := newStub(t, "fp", nil)
	rt, _ := newRouter(t, Config{Traces: obs.NewTraceLog(8)}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	const workers, perWorker = 4, 20
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
					t.Errorf("extract = %d", w.Code)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				if w := doGet(rt, "/metrics"); w.Code != http.StatusOK {
					t.Errorf("/metrics = %d", w.Code)
					return
				}
				if w := doGet(rt, "/fleet"); w.Code != http.StatusOK {
					t.Errorf("/fleet = %d", w.Code)
					return
				}
			}
		}()
	}
	wg.Wait()

	w := doGet(rt, "/metrics")
	if ct := w.Header().Get("Content-Type"); ct != obs.ContentTypePrometheus {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	out := w.Body.String()
	for _, want := range []string{
		"# TYPE fleet_requests counter\n",
		"fleet_requests 80\n",
		"# TYPE fleet_request_seconds histogram\n",
		`fleet_request_seconds_window{route="single",quantile="0.99"}`,
		"fleet_backend_seconds_window",
		"# TYPE fleet_backends_healthy gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}
