package fleet

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// State is a backend's position in the health ladder. The prober moves a
// backend one rung at a time — Healthy ↔ Suspect ↔ Down — so a single
// dropped probe never yanks a replica out of rotation and a single lucky
// probe never floods a sick one.
type State int32

const (
	// Suspect is the starting state (unprobed) and the middle rung:
	// routable only when no Healthy backend is available.
	Suspect State = iota
	// Healthy backends take all normal traffic.
	Healthy
	// Down backends receive no requests, only probes.
	Down
)

// String names the state for logs and the /fleet endpoint.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Down:
		return "down"
	default:
		return "suspect"
	}
}

// Backend is one paeserve replica as the router sees it: its probed health
// state, the bundle fingerprint it advertises, its circuit breaker, and its
// current in-flight load.
type Backend struct {
	url      string
	inflight atomic.Int64
	br       breaker
	win      *obs.Window // rolling attempt-latency window; nil is inert

	mu         sync.Mutex
	state      State
	fp         string        // bundle fingerprint from the last successful probe or response
	wl         workload.Kind // workload from the last probe or response; "" = not yet learned
	consecFail int
	consecOK   int
	lastErr    string
	lastProbe  time.Time
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// State returns the backend's current health-ladder position.
func (b *Backend) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Fingerprint returns the bundle fingerprint the backend last advertised
// ("" before the first successful probe).
func (b *Backend) Fingerprint() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fp
}

// Workload returns the workload the backend last advertised, via /healthz or
// the X-Pae-Workload response header ("" while unknown — an unprobed backend
// or one running a pre-workload serve build; the router routes to it as a
// wildcard, mirroring how unprobed fingerprints pin lazily).
func (b *Backend) Workload() workload.Kind {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.wl
}

// Inflight returns the number of requests the router currently has running
// against this backend.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// setFingerprint records a fingerprint observed on a live response — fresher
// than the last probe during a bundle rollout.
func (b *Backend) setFingerprint(fp string) {
	if fp == "" {
		return
	}
	b.mu.Lock()
	b.fp = fp
	b.mu.Unlock()
}

// setWorkload records a workload observed on a live response — fresher than
// the last probe if a reload just swapped the backend to another workload.
func (b *Backend) setWorkload(wl workload.Kind) {
	if wl == "" {
		return
	}
	b.mu.Lock()
	b.wl = wl
	b.mu.Unlock()
}

// onProbe folds one active health-check result into the state machine and
// returns the transition (old == new when nothing changed). ok is a 200
// /healthz; draining is the backend's readiness signal, which drops it
// straight to Down — it *told* us to stop routing, no threshold needed.
// fail and rise are the consecutive-probe thresholds for moving one rung
// down or up the ladder.
func (b *Backend) onProbe(ok, draining bool, fp string, wl workload.Kind, errStr string, fail, rise int) (State, State) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.state
	b.lastProbe = time.Now()
	b.lastErr = errStr
	if fp != "" {
		b.fp = fp
	}
	if wl != "" {
		b.wl = wl
	}
	switch {
	case draining:
		b.state = Down
		b.consecFail, b.consecOK = 0, 0
	case ok:
		b.consecOK++
		b.consecFail = 0
		if b.consecOK >= rise {
			// One rung up: Down → Suspect → Healthy.
			if b.state == Down {
				b.state = Suspect
			} else {
				b.state = Healthy
			}
			b.consecOK = 0
		}
	default:
		b.consecFail++
		b.consecOK = 0
		if b.consecFail >= fail {
			// One rung down: Healthy → Suspect → Down.
			if b.state == Healthy {
				b.state = Suspect
			} else {
				b.state = Down
			}
			b.consecFail = 0
		}
	}
	return old, b.state
}

// BackendStatus is the /fleet JSON row for one backend. Latency is the
// backend's rolling attempt-latency window (p50/p99/p999 over the last
// minute), present when the router records observability.
type BackendStatus struct {
	URL          string              `json:"url"`
	State        string              `json:"state"`
	Fingerprint  string              `json:"fingerprint,omitempty"`
	Workload     string              `json:"workload,omitempty"`
	Inflight     int64               `json:"inflight"`
	Breaker      string              `json:"breaker"`
	BreakerOpens int64               `json:"breaker_opens,omitempty"`
	ConsecFail   int                 `json:"consecutive_probe_failures,omitempty"`
	LastError    string              `json:"last_error,omitempty"`
	LastProbe    time.Time           `json:"last_probe,omitzero"`
	Latency      *obs.WindowSnapshot `json:"latency,omitempty"`
}

// status snapshots the backend for the /fleet endpoint.
func (b *Backend) status(now time.Time) BackendStatus {
	b.mu.Lock()
	st := BackendStatus{
		URL:         b.url,
		State:       b.state.String(),
		Fingerprint: b.fp,
		Workload:    string(b.wl),
		ConsecFail:  b.consecFail,
		LastError:   b.lastErr,
		LastProbe:   b.lastProbe,
	}
	b.mu.Unlock()
	st.Inflight = b.inflight.Load()
	st.Breaker = string(b.br.state(now))
	b.br.mu.Lock()
	st.BreakerOpens = b.br.opens
	b.br.mu.Unlock()
	if b.win != nil {
		ls := b.win.Snapshot()
		st.Latency = &ls
	}
	return st
}
