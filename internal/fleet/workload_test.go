package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// newWorkloadStub builds a stub advertising a workload on /healthz and
// stamping it on /extract responses, the way a real paeserve does.
func newWorkloadStub(t testing.TB, fp string, wl workload.Kind, inj *faultinject.Injector) *stub {
	t.Helper()
	s := newStub(t, fp, inj)
	s.wl, s.respWL = wl, wl
	return s
}

const titleBody = `{"id":"p1","html":"掃除機 サイクロン式 2.5kg","workload":"title"}`
const detailBody = `{"id":"p1","html":"<html>weight is 5 kg.</html>","workload":"detail-page"}`

// TestWorkloadMismatchTypedContract pins the satellite contract: backends are
// up and healthy, but none hosts the requested workload. The reply must be a
// typed 503 JSON error with Retry-After — the same machine-readable shape as
// the fingerprint-pinning refusal — not a generic no-backend error, so
// clients can distinguish "fleet busy" from "fleet does not serve this shape".
func TestWorkloadMismatchTypedContract(t *testing.T) {
	a := newWorkloadStub(t, "fp", workload.DetailPage, faultinject.New())
	b := newWorkloadStub(t, "fp", workload.DetailPage, faultinject.New())
	rt, rec := newRouter(t, Config{}, a, b)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	w := doExtract(rt, titleBody)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", w.Code, w.Body)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("refusal body not a typed JSON error: %q", w.Body.String())
	}
	if !strings.Contains(er.Error, "workload") {
		t.Fatalf("refusal %q does not name the workload as the cause", er.Error)
	}
	if er.RetryAfterSeconds != 1 || w.Header().Get("Retry-After") == "" {
		t.Fatalf("refusal lacks Retry-After: %+v", er)
	}
	if got := rec.Counter("fleet.errors"); got != 1 {
		t.Fatalf("fleet.errors = %d, want 1", got)
	}
	// No backend may have seen the request: the refusal is a routing decision.
	for i, s := range []*stub{a, b} {
		if got := s.inj.Calls(faultinject.StageHTTPExtract); got != 0 {
			t.Fatalf("backend %d saw %d extract calls, want 0", i, got)
		}
	}
}

// TestUnknownWorkloadAtRouter: a workload kind the fleet has never heard of
// is a client error, rejected at the edge before burning backend attempts.
func TestUnknownWorkloadAtRouter(t *testing.T) {
	s := newWorkloadStub(t, "fp", workload.DetailPage, faultinject.New())
	rt, _ := newRouter(t, Config{}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	w := doExtract(rt, `{"id":"p1","html":"x","workload":"list-page"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown workload = %d, want 400: %s", w.Code, w.Body)
	}
	if got := s.inj.Calls(faultinject.StageHTTPExtract); got != 0 {
		t.Fatalf("backend saw %d extract calls, want 0", got)
	}
}

// TestMixedWorkloadRouting runs one fleet hosting both workloads and asserts
// requests land only on backends of their kind, with untagged requests free
// to go anywhere.
func TestMixedWorkloadRouting(t *testing.T) {
	ti := newWorkloadStub(t, "fp-title", workload.Title, nil)
	dp := newWorkloadStub(t, "fp-dp", workload.DetailPage, nil)
	rt, _ := newRouter(t, Config{AllowMixedFingerprints: true}, ti, dp)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	for i := 0; i < 10; i++ {
		if w := doExtract(rt, titleBody); w.Code != http.StatusOK ||
			w.Header().Get(serve.BundleHeader) != "fp-title" {
			t.Fatalf("title request %d: %d bundle=%q: %s",
				i, w.Code, w.Header().Get(serve.BundleHeader), w.Body)
		}
		if w := doExtract(rt, detailBody); w.Code != http.StatusOK ||
			w.Header().Get(serve.BundleHeader) != "fp-dp" {
			t.Fatalf("detail request %d: %d bundle=%q: %s",
				i, w.Code, w.Header().Get(serve.BundleHeader), w.Body)
		}
	}
	// Untagged requests are wildcard: any healthy backend may answer.
	if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
		t.Fatalf("untagged request = %d: %s", w.Code, w.Body)
	}
	// /fleet reports who hosts what.
	var fs FleetStatus
	if err := json.Unmarshal(doGet(rt, "/fleet").Body.Bytes(), &fs); err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, b := range fs.Backends {
		seen[b.Fingerprint] = b.Workload
	}
	if seen["fp-title"] != "title" || seen["fp-dp"] != "detail-page" {
		t.Fatalf("/fleet workloads = %v", seen)
	}
}

// TestWorkloadLearnedFromResponse covers the reload race: a backend whose
// probes never advertised a workload answers with the X-Pae-Workload header,
// and the router must adopt it — the header is fresher than the last probe.
func TestWorkloadLearnedFromResponse(t *testing.T) {
	s := newStub(t, "fp", nil)
	s.respWL = workload.Title // healthz stays silent; only responses carry it
	rt, _ := newRouter(t, Config{}, s)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())

	if got := rt.Backends()[0].Workload(); got != "" {
		t.Fatalf("workload before traffic = %q, want unknown", got)
	}
	// An unknown-workload backend is wildcard-routable; the response teaches.
	if w := doExtract(rt, singleBody); w.Code != http.StatusOK {
		t.Fatalf("untagged request = %d", w.Code)
	}
	if got := rt.Backends()[0].Workload(); got != workload.Title {
		t.Fatalf("workload after traffic = %q, want title", got)
	}
	// The learned workload now blocks mismatched requests.
	if w := doExtract(rt, detailBody); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("detail-page request after learning = %d, want 503: %s", w.Code, w.Body)
	}
}

// TestMixedWorkloadChaos is the tentpole acceptance test: one fleet hosting
// both workloads under chaos — a title replica wedges mid-run, a detail-page
// replica is killed outright — while a closed loop alternates workloads.
// Zero client-visible failures, and every response must come from a backend
// of the requested kind: fault recovery is never allowed to cross workloads.
// Run under -race by `make verify`.
func TestMixedWorkloadChaos(t *testing.T) {
	const (
		totalRequests = 400
		workers       = 8
		killAfter     = 120
	)

	wantFP := map[workload.Kind]string{
		workload.Title:      "fp-title",
		workload.DetailPage: "fp-dp",
	}
	wedged := newWorkloadStub(t, "fp-title", workload.Title, faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPExtract, Call: 20, Until: faultinject.Forever, Kind: faultinject.Hang,
	}))
	steadyTitle := newWorkloadStub(t, "fp-title", workload.Title, faultinject.New())
	victim := newWorkloadStub(t, "fp-dp", workload.DetailPage, faultinject.New()) // killed mid-run
	steadyDP := newWorkloadStub(t, "fp-dp", workload.DetailPage, faultinject.New())
	for _, s := range []*stub{wedged, steadyTitle, victim, steadyDP} {
		s.delay = 2 * time.Millisecond
	}

	rec := obs.New(obs.Options{NoRuntimeStats: true})
	rt, _ := newRouter(t, Config{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		FailThreshold:    2,
		RiseThreshold:    2,
		MaxAttempts:      3,
		AttemptTimeout:   300 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		HedgeAfter:       50 * time.Millisecond,
		MaxInflight:      64,
		BreakerThreshold: 4,
		BreakerCooldown:  200 * time.Millisecond,
		Obs:              rec,
	}, wedged, steadyTitle, victim, steadyDP)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())
	rt.Start()

	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	var completed, failures atomic.Int64
	var killOnce sync.Once
	kill := func() {
		victim.srv.CloseClientConnections()
		victim.srv.Close()
		t.Logf("killed detail-page backend %s after %d requests", victim.srv.URL, completed.Load())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < totalRequests/workers; i++ {
				wl := workload.Title
				if (w+i)%2 == 0 {
					wl = workload.DetailPage
				}
				body := fmt.Sprintf(`{"id":"w%d-r%d","html":"weight is 5 kg.","workload":%q}`, w, i, wl)
				resp, err := client.Post(front.URL+"/extract", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					failures.Add(1)
					t.Errorf("w%d r%d: transport error: %v", w, i, err)
					continue
				}
				rbody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var out serve.Response
				switch {
				case resp.StatusCode != http.StatusOK:
					failures.Add(1)
					t.Errorf("w%d r%d (%s): status %d: %s", w, i, wl, resp.StatusCode, rbody)
				case json.Unmarshal(rbody, &out) != nil || len(out.Triples) == 0:
					failures.Add(1)
					t.Errorf("w%d r%d (%s): malformed response: %s", w, i, wl, rbody)
				case out.Bundle != wantFP[wl]:
					failures.Add(1)
					t.Errorf("w%d r%d: %s request answered by %q — crossed workloads", w, i, wl, out.Bundle)
				}
				if completed.Add(1) == killAfter {
					killOnce.Do(kill)
				}
			}
		}(w)
	}
	wg.Wait()
	killOnce.Do(kill)

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d client-visible failures out of %d requests", got, totalRequests)
	}
	if got := rec.Counter("fleet.success"); got != totalRequests {
		t.Fatalf("fleet.success = %d, want %d", got, totalRequests)
	}
	if got := rec.Counter("fleet.retries") + rec.Counter("fleet.hedges"); got == 0 {
		t.Fatal("no retries or hedges fired; the chaos did not bite")
	}
	t.Logf("mixed chaos summary: success=%d retries=%d hedges=%d breaker_opens=%d state_changes=%d",
		rec.Counter("fleet.success"), rec.Counter("fleet.retries"),
		rec.Counter("fleet.hedges"), rec.Counter("fleet.breaker_opens"),
		rec.Counter("fleet.state_changes"))
}
