package fleet

import (
	"sync"
	"time"
)

// breaker is a per-backend circuit breaker, the passive complement to the
// active health checker: probes catch a backend that is down, the breaker
// catches one that answers probes but fails requests. Consecutive request
// failures past the threshold open the circuit; after the cooldown one
// trial request is allowed through (half-open) and its outcome closes or
// re-opens the circuit.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit
	cooldown  time.Duration // how long the circuit stays open
	fails     int
	openUntil time.Time // zero when closed
	trial     bool      // a half-open trial request is in flight
	opens     int64     // lifetime count of transitions to open
}

// breakerState names the circuit position for the /fleet status endpoint.
type breakerState string

const (
	breakerClosed   breakerState = "closed"
	breakerOpen     breakerState = "open"
	breakerHalfOpen breakerState = "half-open"
)

func (br *breaker) state(now time.Time) breakerState {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch {
	case br.openUntil.IsZero():
		return breakerClosed
	case now.Before(br.openUntil):
		return breakerOpen
	default:
		return breakerHalfOpen
	}
}

// closed reports whether the circuit is fully closed (normal routing).
func (br *breaker) closed(now time.Time) bool { return br.state(now) == breakerClosed }

// tryTrial consumes the single half-open trial slot. It returns true only
// when the cooldown has elapsed and no other trial is in flight.
func (br *breaker) tryTrial(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	if br.openUntil.IsZero() || now.Before(br.openUntil) || br.trial {
		return false
	}
	br.trial = true
	return true
}

// success closes the circuit and resets the failure streak.
func (br *breaker) success() {
	br.mu.Lock()
	br.fails = 0
	br.openUntil = time.Time{}
	br.trial = false
	br.mu.Unlock()
}

// failure records one failed request; it reports true when this failure
// opened (or re-opened) the circuit.
func (br *breaker) failure(now time.Time) bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	br.fails++
	trialFailed := br.trial
	br.trial = false
	switch {
	case br.openUntil.IsZero():
		// Closed: open once the failure streak reaches the threshold.
		if br.fails < br.threshold {
			return false
		}
	case !trialFailed && now.Before(br.openUntil):
		// Already open and this was a straggler from before it opened:
		// nothing new to learn.
		return false
	}
	// Threshold reached, or a half-open trial failed: (re-)open.
	br.openUntil = now.Add(br.cooldown)
	br.opens++
	return true
}
