package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// TestFleetChaosClosedLoop is the fleet's acceptance test: a 1000-request
// closed loop against three replicas while one of them wedges (every
// extraction hangs from its 40th call on) and another is killed outright
// mid-run — its in-flight connections reset, then its listener closed so
// later dials are refused. The router must absorb every fault: zero
// client-visible failures, with retries, hedges, breakers and the health
// ladder doing the containment. Run under -race by `make verify`.
func TestFleetChaosClosedLoop(t *testing.T) {
	const (
		totalRequests = 1000
		workers       = 8
		killAfter     = 300 // completed requests before the kill
	)

	// Replica 0 wedges mid-run: from extraction #40 every request hangs
	// until the router's attempt timeout fires. Its health endpoint keeps
	// answering — this is the breaker's case, not the prober's.
	wedged := newStub(t, "fp-chaos", faultinject.New(faultinject.Fault{
		Stage: faultinject.StageHTTPExtract, Call: 40, Until: faultinject.Forever, Kind: faultinject.Hang,
	}))
	victim := newStub(t, "fp-chaos", faultinject.New()) // killed mid-run
	steady := newStub(t, "fp-chaos", faultinject.New())
	for _, s := range []*stub{wedged, victim, steady} {
		s.delay = 2 * time.Millisecond
	}

	rec := obs.New(obs.Options{NoRuntimeStats: true})
	rt, _ := newRouter(t, Config{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		FailThreshold:    2,
		RiseThreshold:    2,
		MaxAttempts:      3,
		AttemptTimeout:   300 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		HedgeAfter:       50 * time.Millisecond,
		MaxInflight:      64, // far above the worker count: no shedding noise
		BreakerThreshold: 4,
		BreakerCooldown:  200 * time.Millisecond,
		Obs:              rec,
	}, wedged, victim, steady)
	rt.ProbeAll(t.Context())
	rt.ProbeAll(t.Context())
	rt.Start()

	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	var completed, failures atomic.Int64
	var killOnce sync.Once
	kill := func() {
		// Reset in-flight connections first (clients see ECONNRESET), then
		// refuse new ones — the full crash, not a graceful drain.
		victim.srv.CloseClientConnections()
		victim.srv.Close()
		t.Logf("killed backend %s after %d requests", victim.srv.URL, completed.Load())
	}

	client := &http.Client{Timeout: 5 * time.Second}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < totalRequests/workers; i++ {
				body := fmt.Sprintf(`{"id":"w%d-r%d","html":"<html>weight is 5 kg.</html>"}`, w, i)
				resp, err := client.Post(front.URL+"/extract", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					failures.Add(1)
					t.Errorf("w%d r%d: transport error: %v", w, i, err)
					continue
				}
				rbody, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var out serve.Response
				switch {
				case resp.StatusCode != http.StatusOK:
					failures.Add(1)
					t.Errorf("w%d r%d: status %d: %s", w, i, resp.StatusCode, rbody)
				case json.Unmarshal(rbody, &out) != nil || out.Bundle != "fp-chaos" || len(out.Triples) == 0:
					failures.Add(1)
					t.Errorf("w%d r%d: malformed response: %s", w, i, rbody)
				}
				if completed.Add(1) == killAfter {
					killOnce.Do(kill)
				}
			}
		}(w)
	}
	wg.Wait()
	killOnce.Do(kill) // belt and braces: the kill must have happened

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d client-visible failures out of %d requests", got, totalRequests)
	}
	if got := rec.Counter("fleet.success"); got != totalRequests {
		t.Fatalf("fleet.success = %d, want %d", got, totalRequests)
	}
	// The faults must actually have been exercised and absorbed.
	if got := rec.Counter("fleet.retries") + rec.Counter("fleet.hedges"); got == 0 {
		t.Fatal("no retries or hedges fired; the chaos did not bite")
	}
	if got := rec.Counter("fleet.breaker_opens"); got == 0 {
		t.Fatal("no breaker opened for the wedged backend")
	}
	if got := rec.Counter("fleet.state_changes"); got == 0 {
		t.Fatal("the killed backend never changed health state")
	}
	t.Logf("chaos summary: success=%d retries=%d hedges=%d hedge_wins=%d breaker_opens=%d probe_failures=%d state_changes=%d",
		rec.Counter("fleet.success"), rec.Counter("fleet.retries"),
		rec.Counter("fleet.hedges"), rec.Counter("fleet.hedge_wins"),
		rec.Counter("fleet.breaker_opens"), rec.Counter("fleet.probe_failures"),
		rec.Counter("fleet.state_changes"))
}
