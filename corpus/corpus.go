// Package corpus is the public face of the streaming corpus layer. It
// re-exports internal/corpus so library users can feed pae.RunSource from
// an on-disk corpus or an in-memory document slice — the same machinery
// cmd/paerun wires up behind -corpus and cmd/paegen writes behind
// -shard-size.
//
//	r, err := corpus.Open("./corpus")   // sharded or legacy flat layout
//	src := r.Source()
//	defer src.Close()
//	result, err := pae.RunSource(ctx,
//	    pae.Input{Source: src, Queries: r.Manifest().Queries, Lang: r.Manifest().Lang},
//	    pae.Config{})
//
// Reads verify the manifest's per-shard SHA-256 fingerprints as they
// stream; damage surfaces as a typed error (ErrFingerprint, ErrCorrupt,
// ErrSchemaVersion, ErrNotCorpus), never a panic or a silent short read.
package corpus

import (
	"repro/internal/corpus"
	"repro/internal/seed"
)

// Document is one product page; identical to pae.Document.
type Document = seed.Document

// SchemaVersion identifies the sharded corpus layout.
const SchemaVersion = corpus.SchemaVersion

// DefaultShardSize is the writer's pages-per-shard when WriterOptions
// leaves ShardSize zero.
const DefaultShardSize = corpus.DefaultShardSize

// Typed failure sentinels; match with errors.Is.
var (
	// ErrNotCorpus: the directory holds neither a sharded nor a flat corpus.
	ErrNotCorpus = corpus.ErrNotCorpus
	// ErrSchemaVersion: the corpus was written under a different schema
	// version (the error is a *VersionError carrying both versions).
	ErrSchemaVersion = corpus.ErrSchemaVersion
	// ErrCorrupt: a shard or manifest is truncated or undecodable.
	ErrCorrupt = corpus.ErrCorrupt
	// ErrFingerprint: a shard's bytes do not hash to the manifest's SHA-256.
	ErrFingerprint = corpus.ErrFingerprint
)

// VersionError reports a schema-version mismatch; errors.Is it against
// ErrSchemaVersion.
type VersionError = corpus.VersionError

// Source is the streaming document iterator every pipeline stage consumes;
// pae.Source is the same type.
type Source = corpus.Source

// SliceSource adapts an in-memory document slice to a Source.
type SliceSource = corpus.SliceSource

// Reader opens an on-disk corpus directory (sharded or legacy flat layout).
type Reader = corpus.Reader

// Manifest describes a sharded corpus: schema version, name/lang, query
// log, alias table, page count, and per-shard geometry + fingerprints.
type Manifest = corpus.Manifest

// ShardInfo is one shard's entry in the manifest.
type ShardInfo = corpus.ShardInfo

// Writer streams pages into a new sharded corpus directory; Close writes
// the manifest (the commit point).
type Writer = corpus.Writer

// WriterOptions configures a Writer.
type WriterOptions = corpus.WriterOptions

// NewSliceSource wraps an in-memory document slice in a Source.
func NewSliceSource(docs []Document) *SliceSource { return corpus.NewSliceSource(docs) }

// Open opens a corpus directory in either supported layout.
func Open(dir string) (*Reader, error) { return corpus.Open(dir) }

// ReadManifest reads only the manifest of a sharded corpus — cheap
// inspection without touching page bodies.
func ReadManifest(dir string) (*Manifest, error) { return corpus.ReadManifest(dir) }

// IsDir reports whether dir looks like a corpus directory in any layout.
func IsDir(dir string) bool { return corpus.IsDir(dir) }

// NewWriter creates a sharded corpus writer rooted at dir.
func NewWriter(dir string, opt WriterOptions) (*Writer, error) { return corpus.NewWriter(dir, opt) }
