// Package synth exposes the synthetic e-commerce corpus generator publicly:
// category schemas modelled on the paper's 21 evaluation categories (18
// Japanese, 3 German), merchant-style page rendering, query logs, and the
// planted ground truth that package metrics judges against.
//
// The generator substitutes for the paper's proprietary Rakuten data; see
// DESIGN.md §1 for the substitution argument and §7 for how each synthetic
// phenomenon maps to a paper finding.
package synth

import "repro/internal/gen"

// Category is a product-category schema.
type Category = gen.Category

// Attribute is one attribute schema within a category.
type Attribute = gen.Attribute

// Corpus is a generated dataset: pages, query log, planted truth, and the
// referee's alias table and value domains.
type Corpus = gen.Corpus

// Page is one generated product page.
type Page = gen.Page

// TruthTriple is one planted referee judgment.
type TruthTriple = gen.TruthTriple

// Options configures generation.
type Options = gen.Options

// Generate renders the corpus for one category.
func Generate(cat Category, opt Options) *Corpus { return gen.Generate(cat, opt) }

// Merge combines corpora into a heterogeneous parent category (§VIII-E).
func Merge(name string, parts ...*Corpus) *Corpus { return gen.Merge(name, parts...) }

// CategoryByName looks up a built-in category schema.
func CategoryByName(name string) (Category, bool) { return gen.CategoryByName(name) }

// JapaneseCategories returns the 18 Japanese evaluation categories.
func JapaneseCategories() []Category { return gen.JapaneseCategories() }

// GermanCategories returns the 3 German evaluation categories.
func GermanCategories() []Category { return gen.GermanCategories() }

// TableCategories returns the 8 categories of the paper's Tables I–III.
func TableCategories() []Category { return gen.TableCategories() }

// NormalizeValue canonicalises a value string the way the referee matches
// values (spaces removed, latin lower-cased).
func NormalizeValue(v string) string { return gen.NormalizeValue(v) }
