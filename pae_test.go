package pae_test

import (
	"context"
	"errors"
	"testing"

	pae "repro"
	"repro/internal/crf"
	"repro/internal/gen"
)

// TestPublicAPI exercises the package exactly the way the README quickstart
// does.
func TestPublicAPI(t *testing.T) {
	gc := gen.Generate(gen.Tennis(), gen.Options{Seed: 4, Items: 90})
	docs := make([]pae.Document, len(gc.Pages))
	for i, p := range gc.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}
	res, err := pae.Run(
		pae.Corpus{Documents: docs, Queries: gc.Queries, Lang: "ja"},
		pae.Config{Iterations: 1, CRF: crf.Config{MaxIter: 25}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalTriples()) == 0 {
		t.Fatal("no triples extracted through the public API")
	}
	var sawWeight bool
	for _, tr := range res.FinalTriples() {
		if tr.ProductID == "" || tr.Attribute == "" || tr.Value == "" {
			t.Fatalf("malformed triple %+v", tr)
		}
		if tr.Attribute == "重量" || tr.Attribute == "本体重量" || tr.Attribute == "重さ" {
			sawWeight = true
		}
	}
	if !sawWeight {
		t.Log("note: no weight triples in this small run (not fatal)")
	}
}

func TestPublicAPIModelKinds(t *testing.T) {
	if pae.CRF.String() != "CRF" || pae.RNN.String() != "RNN" {
		t.Fatal("model kind constants broken")
	}
}

// TestPublicAPICancellation exercises the context-aware entry point and the
// exported error taxonomy: a canceled run ends gracefully with the typed
// cause in Result.StopReason, matchable through the re-exported sentinels.
func TestPublicAPICancellation(t *testing.T) {
	gc := gen.Generate(gen.Tennis(), gen.Options{Seed: 4, Items: 90})
	docs := make([]pae.Document, len(gc.Pages))
	for i, p := range gc.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}
	corpus := pae.Corpus{Documents: docs, Queries: gc.Queries, Lang: "ja"}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pae.RunContext(ctx, corpus, pae.Config{Iterations: 1, CRF: crf.Config{MaxIter: 25}})
	if !errors.Is(err, pae.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RunContext err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("pre-start cancellation returned a Result")
	}

	// An uncancelable context behaves exactly like Run.
	res, err = pae.RunContext(context.Background(), corpus, pae.Config{Iterations: 1, CRF: crf.Config{MaxIter: 25}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.StopReason.Completed() || len(res.FinalTriples()) == 0 {
		t.Fatalf("RunContext run did not complete: %s", res.Describe())
	}
}

// TestPublicAPIErrorTaxonomy checks the empty-corpus typed error through the
// package front door.
func TestPublicAPIErrorTaxonomy(t *testing.T) {
	_, err := pae.Run(pae.Corpus{}, pae.Config{})
	if !errors.Is(err, pae.ErrNoDocuments) {
		t.Fatalf("empty corpus err = %v, want ErrNoDocuments", err)
	}
}
