package pae_test

import (
	"fmt"

	pae "repro"
	"repro/metrics"
	"repro/synth"
)

// Example demonstrates the canonical end-to-end use of the library: generate
// (or load) a page corpus, run the bootstrap, and inspect the triples.
func Example() {
	cat, _ := synth.CategoryByName("Tennis")
	corpus := synth.Generate(cat, synth.Options{Seed: 1, Items: 80})

	docs := make([]pae.Document, len(corpus.Pages))
	for i, p := range corpus.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}
	result, err := pae.Run(
		pae.Corpus{Documents: docs, Queries: corpus.Queries, Lang: "ja"},
		pae.Config{Iterations: 1},
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	truth := metrics.NewTruth(corpus)
	rep := truth.Judge(result.FinalTriples())
	fmt.Println("extracted some triples:", len(result.FinalTriples()) > 0)
	fmt.Println("precision above 80%:", rep.Precision() > 80)
	// Output:
	// extracted some triples: true
	// precision above 80%: true
}

// ExampleConfig_ablations shows the Table-IV ablation toggles.
func ExampleConfig_ablations() {
	cfg := pae.Config{
		Iterations:               5,
		DisableSemanticCleaning:  true, // the paper's "-sem" variant
		DisableSyntacticCleaning: true, // "-sem -synt"
		DisableDiversification:   true, // "-div"
	}
	fmt.Println(cfg.Iterations)
	// Output: 5
}
