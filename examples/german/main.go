// German: the paper's §VII cross-language evaluation — the same pipeline,
// unchanged except for the tokenizer selected by the language code, on the
// three German categories (mailbox, coffee machines, garden).
package main

import (
	"fmt"

	pae "repro"
	"repro/metrics"
	"repro/synth"
)

func main() {
	fmt.Printf("%-22s  %-9s  %-8s  %-7s\n", "category", "precision", "coverage", "triples")
	for _, cat := range synth.GermanCategories() {
		corpus := synth.Generate(cat, synth.Options{Seed: 11, Items: 180})
		docs := make([]pae.Document, len(corpus.Pages))
		for i, p := range corpus.Pages {
			docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
		}
		result, err := pae.Run(
			pae.Corpus{Documents: docs, Queries: corpus.Queries, Lang: "de"},
			pae.Config{Iterations: 3},
		)
		if err != nil {
			panic(err)
		}
		truth := metrics.NewTruth(corpus)
		final := result.FinalTriples()
		rep := truth.Judge(final)
		fmt.Printf("%-22s  %-9.2f  %-8.2f  %-7d\n",
			cat.Name, rep.Precision(), metrics.Coverage(final, len(docs)), len(final))
	}
}
