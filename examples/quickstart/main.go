// Quickstart: run the full PAE bootstrap on a synthetic Japanese category
// and print the extracted triples together with the paper's precision and
// coverage metrics.
package main

import (
	"fmt"

	pae "repro"
	"repro/metrics"
	"repro/synth"
)

func main() {
	// 1. Generate a synthetic Vacuum Cleaner corpus (stand-in for the
	//    paper's Rakuten Ichiba pages; see DESIGN.md).
	cat, _ := synth.CategoryByName("Vacuum Cleaner")
	corpus := synth.Generate(cat, synth.Options{Seed: 7, Items: 200})

	// 2. Adapt the pages to the pipeline input.
	docs := make([]pae.Document, len(corpus.Pages))
	for i, p := range corpus.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}

	// 3. Run the paper's full system: CRF tagger, five bootstrap
	//    iterations, value diversification, syntactic + semantic cleaning.
	result, err := pae.Run(
		pae.Corpus{Documents: docs, Queries: corpus.Queries, Lang: "ja"},
		pae.Config{Iterations: 3},
	)
	if err != nil {
		panic(err)
	}

	fmt.Println("attributes discovered:", result.Attributes)
	fmt.Printf("seed: %d pairs, %d triples\n\n", len(result.SeedPairs), len(result.SeedTriples))

	// 4. Judge every iteration against the planted ground truth.
	truth := metrics.NewTruth(corpus)
	fmt.Printf("%-5s  %-9s  %-8s  %-7s\n", "iter", "precision", "coverage", "triples")
	for _, it := range result.Iterations {
		rep := truth.Judge(it.Triples)
		fmt.Printf("%-5d  %-9.2f  %-8.2f  %-7d\n",
			it.Iteration, rep.Precision(), metrics.Coverage(it.Triples, len(docs)), len(it.Triples))
	}

	// 5. Show a few extracted triples.
	fmt.Println("\nsample triples:")
	for i, t := range result.FinalTriples() {
		if i >= 8 {
			break
		}
		fmt.Printf("  %s | %s = %s\n", t.ProductID, t.Attribute, t.Value)
	}
}
