// Ensemble: the model-combination extension the paper's conclusion (§IX)
// proposes — "they often make similar mistakes, but they can complement each
// other". The intersection of CRF and RNN predictions trades coverage for
// precision; the union trades the other way.
package main

import (
	"fmt"

	pae "repro"
	"repro/metrics"
	"repro/synth"
)

func main() {
	cat, _ := synth.CategoryByName("Ladies Bags")
	corpus := synth.Generate(cat, synth.Options{Seed: 13, Items: 180})
	docs := make([]pae.Document, len(corpus.Pages))
	for i, p := range corpus.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}
	input := pae.Corpus{Documents: docs, Queries: corpus.Queries, Lang: "ja"}
	truth := metrics.NewTruth(corpus)

	show := func(name string, cfg pae.Config) {
		res, err := pae.Run(input, cfg)
		if err != nil {
			panic(err)
		}
		final := res.FinalTriples()
		rep := truth.Judge(final)
		fmt.Printf("%-22s  precision %6.2f  coverage %6.2f  triples %d\n",
			name, rep.Precision(), metrics.Coverage(final, len(docs)), len(final))
	}

	show("CRF", pae.Config{Iterations: 1})
	show("RNN (2 epochs)", pae.Config{Iterations: 1, Model: pae.RNN})
	inter, union := pae.Intersection, pae.Union
	show("ensemble intersection", pae.Config{Iterations: 1, Combine: &inter})
	show("ensemble union", pae.Config{Iterations: 1, Combine: &union})
}
