// Specialized: the paper's §VIII-D experiment — a single global model tags
// every attribute of a category, while a specialised model trained on a
// subset of attributes can multiply the coverage of rare attributes, at the
// risk of losing the inter-attribute distinctions that keep precision high.
package main

import (
	"fmt"

	pae "repro"
	"repro/metrics"
	"repro/synth"
)

func main() {
	cat, _ := synth.CategoryByName("Digital Cameras")
	corpus := synth.Generate(cat, synth.Options{Seed: 21, Items: 220})
	docs := make([]pae.Document, len(corpus.Pages))
	for i, p := range corpus.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}
	input := pae.Corpus{Documents: docs, Queries: corpus.Queries, Lang: "ja"}

	// The complex attributes of §VIII-C: A1 shutter speed, A2 effective
	// pixels, A3 weight.
	targets := []string{"シャッタースピード", "有効画素数", "重量"}

	// Global model over every attribute.
	global, err := pae.Run(input, pae.Config{Iterations: 2})
	if err != nil {
		panic(err)
	}
	// Resolve the representative surface names the global run chose for the
	// target attributes, then train the specialised model on just those.
	var filter []string
	for _, a := range global.Attributes {
		for _, want := range targets {
			if corpus.Canon(a) == want {
				filter = append(filter, a)
			}
		}
	}
	specialized, err := pae.Run(input, pae.Config{Iterations: 2, AttrFilter: filter})
	if err != nil {
		panic(err)
	}

	truth := metrics.NewTruth(corpus)
	gCov := truth.AttributeCoverage(global.FinalTriples(), len(docs))
	sCov := truth.AttributeCoverage(specialized.FinalTriples(), len(docs))
	gPrec := truth.JudgeByAttribute(global.FinalTriples())
	sPrec := truth.JudgeByAttribute(specialized.FinalTriples())

	fmt.Printf("%-14s  %-12s  %-12s  %-12s  %-12s\n",
		"attribute", "cov global", "cov special", "prec global", "prec special")
	for _, a := range targets {
		fmt.Printf("%-14s  %-12.2f  %-12.2f  %-12.2f  %-12.2f\n",
			a, gCov[a], sCov[a], gPrec[a].Precision(), sPrec[a].Precision())
	}
}
