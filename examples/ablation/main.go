// Ablation: the paper's Table IV — remove the semantic cleaning, the
// syntactic (veto) cleaning, or the value-diversification module from the
// pipeline and watch the precision drop on a noisy category.
package main

import (
	"fmt"

	pae "repro"
	"repro/metrics"
	"repro/synth"
)

func main() {
	cat, _ := synth.CategoryByName("Garden")
	corpus := synth.Generate(cat, synth.Options{Seed: 5, Items: 240})
	docs := make([]pae.Document, len(corpus.Pages))
	for i, p := range corpus.Pages {
		docs[i] = pae.Document{ID: p.ID, HTML: p.HTML}
	}
	input := pae.Corpus{Documents: docs, Queries: corpus.Queries, Lang: "ja"}
	truth := metrics.NewTruth(corpus)

	configs := []struct {
		name string
		cfg  pae.Config
	}{
		{"full system", pae.Config{Iterations: 3}},
		{"-semantic cleaning", pae.Config{Iterations: 3, DisableSemanticCleaning: true}},
		{"-semantic -syntactic", pae.Config{Iterations: 3,
			DisableSemanticCleaning: true, DisableSyntacticCleaning: true}},
		{"-diversification", pae.Config{Iterations: 3, DisableDiversification: true}},
	}
	fmt.Printf("%-22s  %-9s  %-8s\n", "config", "precision", "coverage")
	for _, c := range configs {
		res, err := pae.Run(input, c.cfg)
		if err != nil {
			panic(err)
		}
		final := res.FinalTriples()
		rep := truth.Judge(final)
		fmt.Printf("%-22s  %-9.2f  %-8.2f\n",
			c.name, rep.Precision(), metrics.Coverage(final, len(docs)))
	}
}
