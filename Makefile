GO ?= go

.PHONY: verify build test vet race fuzz clean

## verify is the tier-1 gate: every PR must leave it green.
verify: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz runs each fuzz target briefly; the checked-in corpora under
## testdata/fuzz/ are replayed by plain `make test` as well.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDiscoverCandidates -fuzztime=$(FUZZTIME) ./internal/seed
	$(GO) test -run=^$$ -fuzz=FuzzLex -fuzztime=$(FUZZTIME) ./internal/htmlx

clean:
	$(GO) clean -testcache
