GO ?= go

.PHONY: verify build test vet race fuzz profile bench-smoke fmt-check serve-smoke fleet-smoke corpus-smoke title-smoke loop-smoke clean

## verify is the tier-1 gate: every PR must leave it green.
verify: fmt-check vet build race

build:
	$(GO) build ./...

## vet covers both build configurations: the default (with the net/http
## debug endpoint) and the obsnodebug tag that strips it.
vet:
	$(GO) vet ./...
	$(GO) vet -tags obsnodebug ./...

test:
	$(GO) test ./...

## -race on the CRF training loops is ~10× slower than native; the longer
## timeout keeps the suite from flaking on small (single-CPU) machines.
## This also runs the fleet chaos test (internal/fleet TestFleetChaosClosedLoop:
## 1k-request closed loop with one of three backends killed and another
## wedged mid-run) under the race detector — the fleet's tier-1 gate.
race:
	$(GO) test -race -timeout 20m ./...

## profile runs the bootstrap overhead benchmarks with CPU and memory
## profiles; inspect them with `go tool pprof cpu.prof`.
profile:
	$(GO) test -run='^$$' -bench='BenchmarkBootstrap(Noop|Live)Recorder' \
		-benchtime=3x -cpuprofile=cpu.prof -memprofile=mem.prof .

## bench-smoke is the benchmark trajectory harness at reduced scale: it runs
## the micro-benchmarks of the parallel hot paths plus a measured table1
## experiment and writes BENCH_smoke.json for comparison against the
## checked-in BENCH_*.json files. Not part of the tier-1 verify gate —
## wall-clock assertions don't belong in CI.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkTagCorpus' -benchtime=3x ./internal/core
	$(GO) test -run='^$$' -bench='BenchmarkBootstrap(Noop|Live)Recorder' -benchtime=1x .
	$(GO) run ./cmd/paebench -exp table1 -items 90 -iterations 2 -benchjson BENCH_smoke.json

## fmt-check fails when any file is not gofmt-clean, printing the offenders.
## Part of the tier-1 verify gate: an unformatted tree fails the PR.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## serve-smoke is the end-to-end serving check: it trains a tiny model,
## writes a bundle, starts the paeserve core on a loopback listener, extracts
## one synthetic page over HTTP, asserts a non-empty triple, and drains the
## server — the TestServeSmoke path, under -race. Not part of the tier-1
## verify gate.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' -v ./internal/serve

## fleet-smoke is the end-to-end fleet check through real processes: it
## builds the paeserve and paerouter binaries, starts three backends and the
## router on loopback, drives a 200-request closed loop, SIGKILLs one backend
## a third of the way in, and requires zero failed requests — retries and
## health checks must absorb the crash. Every request carries an X-Pae-Trace
## ID that must round-trip, /metrics is scraped mid-load on the router and
## surviving backends (request counters must be non-zero), and /debug/traces
## must have captured the run. Not part of the tier-1 verify gate
## (the same containment runs in-process, under -race, in internal/fleet's
## chaos test); this target proves it end to end with actual sockets.
fleet-smoke:
	PAE_FLEET_SMOKE=1 $(GO) test -count=1 -run 'TestFleetSmoke' -v ./cmd/paerouter

## corpus-smoke is the end-to-end streaming-corpus check: paegen writes the
## same corpus in two shard geometries, paerun bootstraps both from disk (one
## with the prepared-corpus spill enabled), and the triples and model bundles
## must be byte-identical — the on-disk layout-invariance contract, exercised
## through the real binaries. paeinspect re-verifies every shard fingerprint.
## Not part of the tier-1 verify gate; the same invariant runs in-process
## (including against the in-memory path) in TestRunSourceLayoutInvariant.
CORPUS_SMOKE_DIR ?= /tmp/pae-corpus-smoke
corpus-smoke:
	rm -rf $(CORPUS_SMOKE_DIR) && mkdir -p $(CORPUS_SMOKE_DIR)
	$(GO) run ./cmd/paegen -category "Vacuum Cleaner" -items 60 -shard-size 16 -out $(CORPUS_SMOKE_DIR)/sharded
	$(GO) run ./cmd/paegen -category "Vacuum Cleaner" -items 60 -shard-size 1000 -out $(CORPUS_SMOKE_DIR)/single
	$(GO) run ./cmd/paeinspect corpus -verify $(CORPUS_SMOKE_DIR)/sharded
	$(GO) run ./cmd/paerun -corpus $(CORPUS_SMOKE_DIR)/sharded -iterations 1 -spill $(CORPUS_SMOKE_DIR)/spill \
		-out $(CORPUS_SMOKE_DIR)/a.jsonl -bundle $(CORPUS_SMOKE_DIR)/a.paeb
	$(GO) run ./cmd/paerun -corpus $(CORPUS_SMOKE_DIR)/single -iterations 1 \
		-out $(CORPUS_SMOKE_DIR)/b.jsonl -bundle $(CORPUS_SMOKE_DIR)/b.paeb
	cmp $(CORPUS_SMOKE_DIR)/a.jsonl $(CORPUS_SMOKE_DIR)/b.jsonl
	cmp $(CORPUS_SMOKE_DIR)/a.paeb $(CORPUS_SMOKE_DIR)/b.paeb
	@echo "corpus-smoke OK: triples and bundle byte-identical across shard geometries"

## title-smoke is the end-to-end title-workload check through real binaries:
## paegen writes a title corpus, paerun bootstraps it into a title bundle
## (the workload travels via the corpus manifest, no extra flags), paeserve
## hosts it, and one extraction round-trips over HTTP — the workload
## handshake must admit title requests and refuse detail-page ones. Not part
## of the tier-1 verify gate; the same contracts run in-process in
## internal/core, internal/serve and internal/fleet.
title-smoke:
	PAE_TITLE_SMOKE=1 $(GO) test -count=1 -run 'TestTitleSmoke' -v ./cmd/paeserve

## loop-smoke is the end-to-end production-loop check through real binaries:
## paegen grows a checkpointed corpus, paepromote -train bootstraps the live
## bundle, a two-backend fleet serves it behind paerouter, and paepromote
## then (a) REJECTS a sabotaged candidate — the fleet keeps its fingerprint —
## and (b) after paegen -append grows the corpus, incrementally retrains
## (reusing checkpointed shards) and PROMOTES the clean candidate via each
## backend's hot reload. A closed-loop load runs through both acts and must
## see zero failed requests across the swap. Not part of the tier-1 verify
## gate; the gate and rollout logic run in-process in internal/promote.
loop-smoke:
	PAE_LOOP_SMOKE=1 $(GO) test -count=1 -run 'TestLoopSmoke' -v ./cmd/paepromote

## fuzz runs each fuzz target briefly; the checked-in corpora under
## testdata/fuzz/ are replayed by plain `make test` as well.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDiscoverCandidates -fuzztime=$(FUZZTIME) ./internal/seed
	$(GO) test -run=^$$ -fuzz=FuzzTitleSeed -fuzztime=$(FUZZTIME) ./internal/seed
	$(GO) test -run=^$$ -fuzz=FuzzLex -fuzztime=$(FUZZTIME) ./internal/htmlx

clean:
	$(GO) clean -testcache
	rm -f cpu.prof mem.prof pae.test
